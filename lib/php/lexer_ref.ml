(** The pre-buffer list-building lexer, kept verbatim as the
    differential reference for the zero-allocation scanner in {!Lexer}
    — exactly like the per-spec pipeline behind [--no-fuse] and the AST
    walker behind [--no-ir].  The [tokenize-equiv] fuzz oracle and the
    seed-replay tests compare its [(Token.t * Loc.t) list] against
    {!Lexer.tokenize}'s, token-for-token and loc-for-loc.

    It raises {!Lexer.Error} (not its own exception) so callers and
    oracles observe the two paths through one exception type.

    The only deliberate divergence from the historical code is shared
    with the new scanner: rewinding a non-exponent [e] suffix (the
    [1e+x] case) now restores the column alongside the position, where
    the old code left the column one or two characters ahead and every
    later location on that line drifted. *)

type state = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make_state ~file src = { src; file; pos = 0; line = 1; col = 0 }

let loc st = Loc.make ~file:st.file ~line:st.line ~col:st.col

let fail st msg = raise (Lexer.Error (msg, loc st))

let at_end st = st.pos >= String.length st.src

let peek st = if at_end st then '\000' else st.src.[st.pos]

let peek2 st =
  if st.pos + 1 >= String.length st.src then '\000' else st.src.[st.pos + 1]

let advance st =
  if not (at_end st) then begin
    if st.src.[st.pos] = '\n' then begin
      st.line <- st.line + 1;
      st.col <- 0
    end
    else st.col <- st.col + 1;
    st.pos <- st.pos + 1
  end

let advance_n st n =
  for _ = 1 to n do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.src && String.sub st.src st.pos n = s

let looking_at_ci st s =
  let n = String.length s in
  st.pos + n <= String.length st.src
  && String.lowercase_ascii (String.sub st.src st.pos n) = String.lowercase_ascii s

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let read_ident st =
  let buf = Buffer.create 16 in
  while (not (at_end st)) && is_ident_char (peek st) do
    Buffer.add_char buf (peek st);
    advance st
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Escape sequences in double-quoted context.                          *)

let resolve_dq_escape ?(quote = '"') st =
  (* Called with [peek st] on the char right after a backslash.  [quote]
     is the delimiter of the surrounding context (['"'] for double-quoted
     strings and heredocs, ['`'] for backticks) — a backslash-escaped
     delimiter always resolves to the delimiter itself. *)
  let c = peek st in
  advance st;
  if c = quote then Some quote
  else
  match c with
  | 'n' -> Some '\n'
  | 't' -> Some '\t'
  | 'r' -> Some '\r'
  | 'v' -> Some '\011'
  | 'f' -> Some '\012'
  | 'e' -> Some '\027'
  | '\\' -> Some '\\'
  | '$' -> Some '$'
  | '"' -> Some '"'
  | '0' .. '7' ->
      (* up to three octal digits, first already consumed *)
      let v = ref (Char.code c - Char.code '0') in
      let n = ref 1 in
      while !n < 3 && peek st >= '0' && peek st <= '7' do
        v := (!v * 8) + (Char.code (peek st) - Char.code '0');
        advance st;
        incr n
      done;
      Some (Char.chr (!v land 0xff))
  | 'x' ->
      if is_hex (peek st) then begin
        let v = ref 0 in
        let n = ref 0 in
        while !n < 2 && is_hex (peek st) do
          let d = peek st in
          let dv =
            if is_digit d then Char.code d - Char.code '0'
            else (Char.code (Char.lowercase_ascii d) - Char.code 'a') + 10
          in
          v := (!v * 16) + dv;
          advance st;
          incr n
        done;
        Some (Char.chr (!v land 0xff))
      end
      else (* not an escape: PHP keeps the backslash *) None
  | other ->
      (* Unknown escape: PHP keeps the backslash. We signal with None and
         let the caller emit both characters. *)
      ignore other;
      None

(* ------------------------------------------------------------------ *)
(* Interpolated (double-quoted / heredoc) content.                     *)

let scan_interp_parts ?quote st ~(stop : state -> bool)
    ~(consume_stop : state -> unit) : Token.interp_part list =
  let parts = ref [] in
  let buf = Buffer.create 32 in
  let flush () =
    if Buffer.length buf > 0 then begin
      parts := Token.Part_str (Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  let rec loop () =
    if at_end st then fail st "unterminated string"
    else if stop st then consume_stop st
    else
      match peek st with
      | '\\' ->
          advance st;
          if at_end st then fail st "dangling backslash in string";
          let before = peek st in
          (match resolve_dq_escape ?quote st with
          | Some c -> Buffer.add_char buf c
          | None ->
              Buffer.add_char buf '\\';
              Buffer.add_char buf before);
          loop ()
      | '$' when is_ident_start (peek2 st) ->
          flush ();
          advance st (* $ *);
          let name = read_ident st in
          (* simple syntax: optional [sub] or ->prop *)
          if peek st = '[' then begin
            advance st;
            let sub =
              if peek st = '$' then begin
                advance st;
                Token.Sub_var (read_ident st)
              end
              else if is_digit (peek st) then begin
                let b = Buffer.create 8 in
                while is_digit (peek st) do
                  Buffer.add_char b (peek st);
                  advance st
                done;
                (* offsets beyond the native int range behave like plain
                   string keys, as PHP treats them *)
                match int_of_string_opt (Buffer.contents b) with
                | Some n -> Token.Sub_int n
                | None -> Token.Sub_name (Buffer.contents b)
              end
              else if is_ident_start (peek st) then Token.Sub_name (read_ident st)
              else if peek st = '\'' then begin
                (* tolerate quoted key in simple syntax *)
                advance st;
                let b = Buffer.create 8 in
                while peek st <> '\'' && not (at_end st) do
                  Buffer.add_char b (peek st);
                  advance st
                done;
                advance st;
                Token.Sub_name (Buffer.contents b)
              end
              else fail st "bad subscript in string interpolation"
            in
            if peek st <> ']' then fail st "expected ] in string interpolation";
            advance st;
            parts := Token.Part_index (name, sub) :: !parts
          end
          else if peek st = '-' && peek2 st = '>' then begin
            advance_n st 2;
            if not (is_ident_start (peek st)) then
              fail st "expected property name in string interpolation";
            let prop = read_ident st in
            parts := Token.Part_prop (name, prop) :: !parts
          end
          else parts := Token.Part_var name :: !parts;
          loop ()
      | '$' when peek2 st = '{' ->
          (* ${name} legacy syntax *)
          flush ();
          advance_n st 2;
          let name = read_ident st in
          if peek st <> '}' then fail st "expected } in ${...} interpolation";
          advance st;
          parts := Token.Part_var name :: !parts;
          loop ()
      | '{' when peek2 st = '$' ->
          flush ();
          advance st (* { *);
          (* capture to matching close brace, tracking nesting and quotes *)
          let b = Buffer.create 16 in
          let depth = ref 1 in
          let rec cap () =
            if at_end st then fail st "unterminated {$...} interpolation"
            else
              match peek st with
              | '{' ->
                  incr depth;
                  Buffer.add_char b '{';
                  advance st;
                  cap ()
              | '}' ->
                  decr depth;
                  if !depth = 0 then advance st
                  else begin
                    Buffer.add_char b '}';
                    advance st;
                    cap ()
                  end
              | '\'' | '"' ->
                  let q = peek st in
                  Buffer.add_char b q;
                  advance st;
                  let rec instr () =
                    if at_end st then fail st "unterminated string in interpolation"
                    else if peek st = '\\' then begin
                      Buffer.add_char b '\\';
                      advance st;
                      Buffer.add_char b (peek st);
                      advance st;
                      instr ()
                    end
                    else if peek st = q then begin
                      Buffer.add_char b q;
                      advance st
                    end
                    else begin
                      Buffer.add_char b (peek st);
                      advance st;
                      instr ()
                    end
                  in
                  instr ();
                  cap ()
              | c ->
                  Buffer.add_char b c;
                  advance st;
                  cap ()
          in
          cap ();
          parts := Token.Part_complex (Buffer.contents b) :: !parts;
          loop ()
      | c ->
          Buffer.add_char buf c;
          advance st;
          loop ()
  in
  loop ();
  flush ();
  List.rev !parts

(* When a double-quoted string has no interpolation we collapse it into a
   CONST_STRING so downstream code sees plain literals. *)
let collapse_parts (parts : Token.interp_part list) : Token.t =
  let all_str =
    List.for_all (function Token.Part_str _ -> true | _ -> false) parts
  in
  if all_str then
    Token.CONST_STRING
      (String.concat ""
         (List.map (function Token.Part_str s -> s | _ -> assert false) parts))
  else Token.INTERP_STRING parts

(* ------------------------------------------------------------------ *)
(* Main tokenizer.                                                     *)

type mode = Html | Php

let tokenize ~file src : (Token.t * Loc.t) list =
  let st = make_state ~file src in
  let out = ref [] in
  let emit tok l = out := (tok, l) :: !out in
  let mode = ref Html in
  let rec run () =
    if at_end st then emit Token.EOF (loc st)
    else
      match !mode with
      | Html -> html ()
      | Php -> php ()
  and html () =
    let l = loc st in
    let buf = Buffer.create 64 in
    let rec loop () =
      if at_end st then ()
      else if looking_at_ci st "<?php" then begin
        advance_n st 5;
        mode := Php
      end
      else if looking_at st "<?=" then begin
        advance_n st 3;
        mode := Php;
        (* <?= is sugar for echo *)
        if Buffer.length buf > 0 then emit (Token.INLINE_HTML (Buffer.contents buf)) l;
        Buffer.clear buf;
        emit Token.K_ECHO (loc st)
      end
      else begin
        Buffer.add_char buf (peek st);
        advance st;
        loop ()
      end
    in
    loop ();
    if Buffer.length buf > 0 then emit (Token.INLINE_HTML (Buffer.contents buf)) l;
    run ()
  and php () =
    if at_end st then emit Token.EOF (loc st)
    else begin
      let c = peek st in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
        advance st;
        php ()
      end
      else if looking_at st "?>" then begin
        (* close tag terminates the current statement; only synthesize a
           semicolon when one is actually missing *)
        let l = loc st in
        advance_n st 2;
        (* PHP swallows a single newline right after the close tag *)
        if peek st = '\n' then advance st;
        (match !out with
        | (Token.SEMI, _) :: _ | (Token.LBRACE, _) :: _ | (Token.RBRACE, _) :: _
        | (Token.COLON, _) :: _ | [] ->
            ()
        | _ -> emit Token.SEMI l);
        mode := Html;
        run ()
      end
      else if looking_at st "//" || c = '#' then begin
        while (not (at_end st)) && peek st <> '\n' && not (looking_at st "?>") do
          advance st
        done;
        php ()
      end
      else if looking_at st "/*" then begin
        advance_n st 2;
        while (not (at_end st)) && not (looking_at st "*/") do
          advance st
        done;
        if at_end st then fail st "unterminated block comment";
        advance_n st 2;
        php ()
      end
      else begin
        let l = loc st in
        let tok = token l in
        emit tok l;
        php ()
      end
    end
  and token l =
    let c = peek st in
    if c = '$' then begin
      advance st;
      if is_ident_start (peek st) then Token.VARIABLE (read_ident st)
      else if peek st = '$' then Token.DOLLAR
      else if peek st = '{' then fail st "${expr} variable-variables unsupported"
      else Token.DOLLAR
    end
    else if is_ident_start c then begin
      let id = read_ident st in
      match Token.of_keyword id with Some k -> k | None -> Token.IDENT id
    end
    else if is_digit c || (c = '.' && is_digit (peek2 st)) then number ()
    else if c = '\'' then single_quoted ()
    else if c = '"' then double_quoted ()
    else if c = '`' then backtick ()
    else if looking_at st "<<<" then heredoc ()
    else operator l
  and number () =
    let b = Buffer.create 16 in
    if looking_at st "0x" || looking_at st "0X" then begin
      Buffer.add_string b "0x";
      advance_n st 2;
      while is_hex (peek st) do
        Buffer.add_char b (peek st);
        advance st
      done;
      if Buffer.length b = 2 then fail st "malformed hexadecimal literal";
      let s = Buffer.contents b in
      (match int_of_string_opt s with
      | Some n -> Token.INT n
      | None ->
          (* hex literal beyond the native int range: PHP overflows to
             float; fold the digits ourselves *)
          let v = ref 0.0 in
          String.iter
            (fun c ->
              let d =
                if is_digit c then Char.code c - Char.code '0'
                else (Char.code (Char.lowercase_ascii c) - Char.code 'a') + 10
              in
              v := (!v *. 16.0) +. float_of_int d)
            (String.sub s 2 (String.length s - 2));
          Token.FLOAT !v)
    end
    else begin
      let is_float = ref false in
      while is_digit (peek st) do
        Buffer.add_char b (peek st);
        advance st
      done;
      if peek st = '.' && is_digit (peek2 st) then begin
        is_float := true;
        Buffer.add_char b '.';
        advance st;
        while is_digit (peek st) do
          Buffer.add_char b (peek st);
          advance st
        done
      end;
      if peek st = 'e' || peek st = 'E' then begin
        let save = st.pos in
        let save_col = st.col in
        let b2 = Buffer.create 4 in
        Buffer.add_char b2 'e';
        advance st;
        if peek st = '+' || peek st = '-' then begin
          Buffer.add_char b2 (peek st);
          advance st
        end;
        if is_digit (peek st) then begin
          is_float := true;
          while is_digit (peek st) do
            Buffer.add_char b2 (peek st);
            advance st
          done;
          Buffer.add_buffer b b2
        end
        else begin
          (* not an exponent after all; rewind (column included, or
             every later loc on the line drifts) *)
          st.pos <- save;
          st.col <- save_col
        end
      end;
      let s = Buffer.contents b in
      if !is_float then Token.FLOAT (float_of_string s)
      else
        match int_of_string_opt s with
        | Some n -> Token.INT n
        | None -> Token.FLOAT (float_of_string s)
    end
  and single_quoted () =
    advance st (* ' *);
    let b = Buffer.create 16 in
    let rec loop () =
      if at_end st then fail st "unterminated single-quoted string"
      else
        match peek st with
        | '\'' -> advance st
        | '\\' ->
            advance st;
            (match peek st with
            | '\'' -> Buffer.add_char b '\''
            | '\\' -> Buffer.add_char b '\\'
            | other ->
                Buffer.add_char b '\\';
                Buffer.add_char b other);
            advance st;
            loop ()
        | ch ->
            Buffer.add_char b ch;
            advance st;
            loop ()
    in
    loop ();
    Token.CONST_STRING (Buffer.contents b)
  and double_quoted () =
    advance st (* opening quote *);
    let parts =
      scan_interp_parts st
        ~stop:(fun s -> peek s = '"')
        ~consume_stop:(fun s -> advance s)
    in
    collapse_parts parts
  and backtick () =
    advance st (* opening backtick *);
    let parts =
      scan_interp_parts ~quote:'`' st
        ~stop:(fun s -> peek s = '`')
        ~consume_stop:(fun s -> advance s)
    in
    Token.BACKTICK_STRING parts
  and heredoc () =
    advance_n st 3;
    (* optional quotes around the tag *)
    let nowdoc = peek st = '\'' in
    if nowdoc || peek st = '"' then advance st;
    let tag = read_ident st in
    if tag = "" then fail st "missing heredoc tag";
    if nowdoc || peek st = '"' then if peek st = '\'' || peek st = '"' then advance st;
    (* consume to end of line *)
    while (not (at_end st)) && peek st <> '\n' do
      advance st
    done;
    if not (at_end st) then advance st;
    let terminator st =
      (* the terminator must start a line, possibly indented *)
      let rec check i =
        if i >= String.length st.src then false
        else
          match st.src.[i] with
          | ' ' | '\t' -> check (i + 1)
          | _ ->
              i + String.length tag <= String.length st.src
              && String.sub st.src i (String.length tag) = tag
              && (i + String.length tag >= String.length st.src
                 ||
                 let nc = st.src.[i + String.length tag] in
                 not (is_ident_char nc))
      in
      (st.pos = 0 || st.src.[st.pos - 1] = '\n') && check st.pos
    in
    let consume_term st =
      while peek st = ' ' || peek st = '\t' do
        advance st
      done;
      advance_n st (String.length tag)
    in
    (* PHP strips the newline that precedes the terminator *)
    let strip_last_nl s =
      let n = String.length s in
      if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s
    in
    if nowdoc then begin
      let b = Buffer.create 32 in
      let rec loop () =
        if at_end st then fail st "unterminated nowdoc"
        else if terminator st then consume_term st
        else begin
          Buffer.add_char b (peek st);
          advance st;
          loop ()
        end
      in
      loop ();
      Token.CONST_STRING (strip_last_nl (Buffer.contents b))
    end
    else
      let parts = scan_interp_parts st ~stop:terminator ~consume_stop:consume_term in
      let parts =
        match List.rev parts with
        | Token.Part_str s :: rest ->
            let s = strip_last_nl s in
            if s = "" && rest <> [] then List.rev rest
            else List.rev (Token.Part_str s :: rest)
        | _ -> parts
      in
      collapse_parts parts
  and operator _l =
    let tk2 t n =
      advance_n st n;
      t
    in
    if looking_at st "<=>" then tk2 Token.SPACESHIP 3
    else if looking_at st "===" then tk2 Token.IDENTICAL 3
    else if looking_at st "!==" then tk2 Token.NOT_IDENTICAL 3
    else if looking_at st "**=" then tk2 Token.POW_EQ 3
    else if looking_at st "<<=" then tk2 Token.SHL_EQ 3
    else if looking_at st ">>=" then tk2 Token.SHR_EQ 3
    else if looking_at st "??=" then tk2 Token.QQ_EQ 3
    else if looking_at st "..." then tk2 Token.ELLIPSIS 3
    else if looking_at st "==" then tk2 Token.EQ_EQ 2
    else if looking_at st "!=" || looking_at st "<>" then tk2 Token.NEQ 2
    else if looking_at st "<=" then tk2 Token.LE 2
    else if looking_at st ">=" then tk2 Token.GE 2
    else if looking_at st "&&" then tk2 Token.AMP_AMP 2
    else if looking_at st "||" then tk2 Token.PIPE_PIPE 2
    else if looking_at st "++" then tk2 Token.INC 2
    else if looking_at st "--" then tk2 Token.DEC 2
    else if looking_at st "+=" then tk2 Token.PLUS_EQ 2
    else if looking_at st "-=" then tk2 Token.MINUS_EQ 2
    else if looking_at st "*=" then tk2 Token.STAR_EQ 2
    else if looking_at st "/=" then tk2 Token.SLASH_EQ 2
    else if looking_at st "%=" then tk2 Token.PERCENT_EQ 2
    else if looking_at st ".=" then tk2 Token.DOT_EQ 2
    else if looking_at st "&=" then tk2 Token.AMP_EQ 2
    else if looking_at st "|=" then tk2 Token.PIPE_EQ 2
    else if looking_at st "^=" then tk2 Token.CARET_EQ 2
    else if looking_at st "**" then tk2 Token.POW 2
    else if looking_at st "<<" then tk2 Token.SHL 2
    else if looking_at st ">>" then tk2 Token.SHR 2
    else if looking_at st "->" then tk2 Token.ARROW 2
    else if looking_at st "=>" then tk2 Token.DOUBLE_ARROW 2
    else if looking_at st "::" then tk2 Token.DOUBLE_COLON 2
    else if looking_at st "??" then tk2 Token.QQ 2
    else
      let c = peek st in
      advance st;
      match c with
      | '(' -> Token.LPAREN
      | ')' -> Token.RPAREN
      | '{' -> Token.LBRACE
      | '}' -> Token.RBRACE
      | '[' -> Token.LBRACKET
      | ']' -> Token.RBRACKET
      | ';' -> Token.SEMI
      | ',' -> Token.COMMA
      | ':' -> Token.COLON
      | '?' -> Token.QUESTION
      | '@' -> Token.AT
      | '+' -> Token.PLUS
      | '-' -> Token.MINUS
      | '*' -> Token.STAR
      | '/' -> Token.SLASH
      | '%' -> Token.PERCENT
      | '.' -> Token.DOT
      | '=' -> Token.EQ
      | '<' -> Token.LT
      | '>' -> Token.GT
      | '!' -> Token.BANG
      | '&' -> Token.AMP
      | '|' -> Token.PIPE
      | '^' -> Token.CARET
      | '~' -> Token.TILDE
      | other -> fail st (Printf.sprintf "unexpected character %C" other)
  in
  run ();
  List.rev !out
