(** The pre-buffer list-building lexer, kept verbatim as the
    differential reference for {!Lexer}'s zero-allocation scanner.  The
    [tokenize-equiv] fuzz oracle and the seed-replay tests compare the
    two token-for-token and loc-for-loc.  Not a production path.

    @raise Lexer.Error on malformed input, exactly like {!Lexer}. *)
val tokenize : file:string -> string -> (Token.t * Loc.t) list
