(** Recursive-descent parser for the PHP subset.

    Expressions are parsed with precedence climbing following PHP's
    operator table.  Both brace-delimited and alternative
    ([if: ... endif;]) statement syntaxes are supported, since real-world
    PHP templates (the kind WAP analyzes) mix the two freely. *)

exception Error of string * Loc.t

(* The parser is an index cursor over the lexer's flat {!Token_buf.t}:
   no boxed [(Token.t * Loc.t)] array is ever built.  Locations live as
   packed ints in the buffer; [cur_loc] materializes the current one at
   most once per cursor position (rules routinely ask for the same
   token's loc several times). *)
type t = {
  toks : Token_buf.t;
  mutable i : int;
  mutable loc_i : int;
  mutable loc_v : Loc.t;
}

let make_buf buf = { toks = buf; i = 0; loc_i = -1; loc_v = Loc.dummy }

let peek p = Token_buf.tok p.toks p.i

let peek_at p n =
  let j = p.i + n in
  if j < Token_buf.length p.toks then Token_buf.tok p.toks j else Token.EOF

let cur_loc p =
  if p.loc_i = p.i then p.loc_v
  else begin
    let l = Token_buf.loc p.toks p.i in
    p.loc_i <- p.i;
    p.loc_v <- l;
    l
  end

let advance p = if p.i < Token_buf.length p.toks - 1 then p.i <- p.i + 1

let fail p msg =
  raise (Error (Printf.sprintf "%s (got %s)" msg (Token.describe (peek p)), cur_loc p))

let eat p tok =
  if Token.equal (peek p) tok then advance p
  else fail p (Printf.sprintf "expected %s" (Token.describe tok))

let eat_semi p =
  (* A close-tag already emitted SEMI; EOF also terminates a statement. *)
  match peek p with
  | Token.SEMI -> advance p
  | Token.EOF -> ()
  | _ -> fail p "expected ';'"

let ident p =
  match peek p with
  | Token.IDENT s ->
      advance p;
      s
  | _ -> fail p "expected identifier"

let variable p =
  match peek p with
  | Token.VARIABLE v ->
      advance p;
      v
  | _ -> fail p "expected variable"

(* ------------------------------------------------------------------ *)
(* Casts.                                                              *)

let cast_of_ident s =
  match String.lowercase_ascii s with
  | "int" | "integer" -> Some Ast.C_int
  | "float" | "double" | "real" -> Some Ast.C_float
  | "string" -> Some Ast.C_string
  | "bool" | "boolean" -> Some Ast.C_bool
  | "object" -> Some Ast.C_object
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Binary operator table for precedence climbing.                      *)

(* (token, ast op, precedence, right-assoc) — higher binds tighter. *)
let binop_info : Token.t -> (Ast.binop * int * bool) option = function
  | Token.PIPE_PIPE -> Some (Ast.Bool_or, 10, false)
  | Token.AMP_AMP -> Some (Ast.Bool_and, 11, false)
  | Token.PIPE -> Some (Ast.Bit_or, 12, false)
  | Token.CARET -> Some (Ast.Bit_xor, 13, false)
  | Token.AMP -> Some (Ast.Bit_and, 14, false)
  | Token.EQ_EQ -> Some (Ast.Eq_eq, 15, false)
  | Token.NEQ -> Some (Ast.Neq, 15, false)
  | Token.IDENTICAL -> Some (Ast.Identical, 15, false)
  | Token.NOT_IDENTICAL -> Some (Ast.Not_identical, 15, false)
  | Token.LT -> Some (Ast.Lt, 16, false)
  | Token.GT -> Some (Ast.Gt, 16, false)
  | Token.LE -> Some (Ast.Le, 16, false)
  | Token.GE -> Some (Ast.Ge, 16, false)
  | Token.SPACESHIP -> Some (Ast.Spaceship, 16, false)
  | Token.SHL -> Some (Ast.Shl, 17, false)
  | Token.SHR -> Some (Ast.Shr, 17, false)
  | Token.PLUS -> Some (Ast.Plus, 18, false)
  | Token.MINUS -> Some (Ast.Minus, 18, false)
  | Token.DOT -> Some (Ast.Concat, 18, false)
  | Token.STAR -> Some (Ast.Mul, 19, false)
  | Token.SLASH -> Some (Ast.Div, 19, false)
  | Token.PERCENT -> Some (Ast.Mod, 19, false)
  | Token.K_INSTANCEOF -> Some (Ast.Instanceof, 20, false)
  | Token.POW -> Some (Ast.Pow, 22, true)
  | _ -> None

let assign_op_of_token : Token.t -> Ast.assign_op option = function
  | Token.EQ -> Some Ast.A_eq
  | Token.DOT_EQ -> Some Ast.A_concat
  | Token.PLUS_EQ -> Some Ast.A_plus
  | Token.MINUS_EQ -> Some Ast.A_minus
  | Token.STAR_EQ -> Some Ast.A_mul
  | Token.SLASH_EQ -> Some Ast.A_div
  | Token.PERCENT_EQ -> Some Ast.A_mod
  | Token.POW_EQ -> Some Ast.A_pow
  | Token.AMP_EQ -> Some Ast.A_bit_and
  | Token.PIPE_EQ -> Some Ast.A_bit_or
  | Token.CARET_EQ -> Some Ast.A_bit_xor
  | Token.SHL_EQ -> Some Ast.A_shl
  | Token.SHR_EQ -> Some Ast.A_shr
  | Token.QQ_EQ -> Some Ast.A_coalesce
  | _ -> None

let is_lvalue (e : Ast.expr) =
  match e.e with
  | Ast.Var _ | Ast.Var_var _ | Ast.Index _ | Ast.Prop _ | Ast.Static_prop _
  | Ast.List _ ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Expressions.                                                        *)

let rec parse_expr p : Ast.expr = parse_word_or p

and parse_word_or p =
  let l = parse_word_xor p in
  if Token.equal (peek p) Token.K_OR then begin
    let loc = cur_loc p in
    advance p;
    let r = parse_word_or p in
    Ast.mk_e ~loc (Ast.Binop (Ast.Bool_or, l, r))
  end
  else l

and parse_word_xor p =
  let l = parse_word_and p in
  if Token.equal (peek p) Token.K_XOR then begin
    let loc = cur_loc p in
    advance p;
    let r = parse_word_xor p in
    Ast.mk_e ~loc (Ast.Binop (Ast.Bool_xor, l, r))
  end
  else l

and parse_word_and p =
  let l = parse_assignment p in
  if Token.equal (peek p) Token.K_AND then begin
    let loc = cur_loc p in
    advance p;
    let r = parse_word_and p in
    Ast.mk_e ~loc (Ast.Binop (Ast.Bool_and, l, r))
  end
  else l

and parse_assignment p =
  let lhs = parse_ternary p in
  match assign_op_of_token (peek p) with
  | Some op when is_lvalue lhs ->
      let loc = cur_loc p in
      advance p;
      if op = Ast.A_eq && Token.equal (peek p) Token.AMP then begin
        advance p;
        let rhs = parse_assignment p in
        Ast.mk_e ~loc (Ast.Assign_ref (lhs, rhs))
      end
      else
        let rhs = parse_assignment p in
        Ast.mk_e ~loc (Ast.Assign (op, lhs, rhs))
  | _ -> lhs

and parse_ternary p =
  let c = parse_coalesce p in
  if Token.equal (peek p) Token.QUESTION then begin
    let loc = cur_loc p in
    advance p;
    if Token.equal (peek p) Token.COLON then begin
      advance p;
      let e2 = parse_assignment p in
      Ast.mk_e ~loc (Ast.Ternary (c, None, e2))
    end
    else
      let e1 = parse_assignment p in
      eat p Token.COLON;
      let e2 = parse_assignment p in
      Ast.mk_e ~loc (Ast.Ternary (c, Some e1, e2))
  end
  else c

and parse_coalesce p =
  let l = parse_binop p 10 in
  if Token.equal (peek p) Token.QQ then begin
    let loc = cur_loc p in
    advance p;
    let r = parse_coalesce p in
    Ast.mk_e ~loc (Ast.Binop (Ast.Coalesce, l, r))
  end
  else l

and parse_binop p min_prec =
  let rec climb lhs min_p =
    match binop_info (peek p) with
    | Some (op, prec, right_assoc) when prec >= min_p ->
        let loc = cur_loc p in
        advance p;
        let next_min = if right_assoc then prec else prec + 1 in
        let rhs = climb (parse_unary p) next_min in
        climb (Ast.mk_e ~loc (Ast.Binop (op, lhs, rhs))) min_p
    | _ -> lhs
  in
  climb (parse_unary p) min_prec

and parse_unary p : Ast.expr =
  let loc = cur_loc p in
  match peek p with
  | Token.BANG ->
      advance p;
      Ast.mk_e ~loc (Ast.Unop (Ast.Not, parse_unary p))
  | Token.MINUS ->
      advance p;
      Ast.mk_e ~loc (Ast.Unop (Ast.Neg, parse_unary p))
  | Token.PLUS ->
      advance p;
      Ast.mk_e ~loc (Ast.Unop (Ast.Uplus, parse_unary p))
  | Token.TILDE ->
      advance p;
      Ast.mk_e ~loc (Ast.Unop (Ast.Bit_not, parse_unary p))
  | Token.AT ->
      advance p;
      Ast.mk_e ~loc (Ast.Unop (Ast.Silence, parse_unary p))
  | Token.INC ->
      advance p;
      Ast.mk_e ~loc (Ast.Incdec (Ast.Pre_inc, parse_unary p))
  | Token.DEC ->
      advance p;
      Ast.mk_e ~loc (Ast.Incdec (Ast.Pre_dec, parse_unary p))
  | Token.K_PRINT ->
      advance p;
      Ast.mk_e ~loc (Ast.Print (parse_assignment p))
  | Token.K_CLONE ->
      advance p;
      Ast.mk_e ~loc (Ast.Clone (parse_unary p))
  | Token.K_INCLUDE ->
      advance p;
      Ast.mk_e ~loc (Ast.Include (Ast.Inc, parse_assignment p))
  | Token.K_INCLUDE_ONCE ->
      advance p;
      Ast.mk_e ~loc (Ast.Include (Ast.Inc_once, parse_assignment p))
  | Token.K_REQUIRE ->
      advance p;
      Ast.mk_e ~loc (Ast.Include (Ast.Req, parse_assignment p))
  | Token.K_REQUIRE_ONCE ->
      advance p;
      Ast.mk_e ~loc (Ast.Include (Ast.Req_once, parse_assignment p))
  | Token.K_NEW ->
      advance p;
      let cls =
        match peek p with
        | Token.IDENT c ->
            advance p;
            c
        | Token.VARIABLE v ->
            advance p;
            (* dynamic class name; record as "$v" *)
            "$" ^ v
        | _ -> fail p "expected class name after new"
      in
      let args =
        if Token.equal (peek p) Token.LPAREN then parse_args p else []
      in
      parse_postfix p (Ast.mk_e ~loc (Ast.New (cls, args)))
  | Token.LPAREN -> (
      (* possible cast *)
      match (peek_at p 1, peek_at p 2) with
      | Token.IDENT id, Token.RPAREN when cast_of_ident id <> None && starts_expr (peek_at p 3) ->
          advance p;
          advance p;
          advance p;
          let c = match cast_of_ident id with Some c -> c | None -> assert false in
          Ast.mk_e ~loc (Ast.Cast (c, parse_unary p))
      | Token.K_ARRAY, Token.RPAREN when starts_expr (peek_at p 3) ->
          advance p;
          advance p;
          advance p;
          Ast.mk_e ~loc (Ast.Cast (Ast.C_array, parse_unary p))
      | _ ->
          advance p;
          let e = parse_expr p in
          eat p Token.RPAREN;
          parse_postfix p e)
  | _ -> parse_postfix p (parse_primary p)

and starts_expr = function
  | Token.INT _ | Token.FLOAT _ | Token.CONST_STRING _ | Token.INTERP_STRING _
  | Token.BACKTICK_STRING _
  | Token.VARIABLE _ | Token.IDENT _ | Token.LPAREN | Token.LBRACKET
  | Token.MINUS | Token.PLUS | Token.BANG | Token.TILDE | Token.AT
  | Token.K_ARRAY | Token.K_NEW | Token.K_LIST | Token.K_ISSET | Token.K_EMPTY
  | Token.K_EXIT | Token.K_PRINT | Token.K_FUNCTION | Token.K_STATIC
  | Token.INC | Token.DEC | Token.DOLLAR ->
      true
  | _ -> false

and parse_primary p : Ast.expr =
  let loc = cur_loc p in
  match peek p with
  | Token.INT n ->
      advance p;
      Ast.mk_e ~loc (Ast.Int n)
  | Token.FLOAT f ->
      advance p;
      Ast.mk_e ~loc (Ast.Float f)
  | Token.CONST_STRING s ->
      advance p;
      Ast.mk_e ~loc (Ast.String s)
  | Token.INTERP_STRING parts ->
      advance p;
      Ast.mk_e ~loc (Ast.Interp (List.map (interp_part_to_ast ~loc) parts))
  | Token.BACKTICK_STRING parts ->
      advance p;
      Ast.mk_e ~loc (Ast.Backtick (List.map (interp_part_to_ast ~loc) parts))
  | Token.VARIABLE v ->
      advance p;
      Ast.mk_e ~loc (Ast.Var v)
  | Token.DOLLAR ->
      advance p;
      let inner =
        match peek p with
        | Token.VARIABLE v ->
            advance p;
            Ast.mk_e ~loc (Ast.Var v)
        | Token.DOLLAR -> parse_primary p
        | _ -> fail p "expected variable after $"
      in
      Ast.mk_e ~loc (Ast.Var_var inner)
  | Token.IDENT id ->
      advance p;
      Ast.mk_e ~loc (Ast.Constant id)
  | Token.K_ARRAY ->
      advance p;
      eat p Token.LPAREN;
      let items = parse_array_items p Token.RPAREN in
      eat p Token.RPAREN;
      Ast.mk_e ~loc (Ast.Array_lit items)
  | Token.LBRACKET ->
      advance p;
      let items = parse_array_items p Token.RBRACKET in
      eat p Token.RBRACKET;
      Ast.mk_e ~loc (Ast.Array_lit items)
  | Token.K_LIST ->
      advance p;
      eat p Token.LPAREN;
      let rec items acc =
        match peek p with
        | Token.RPAREN -> List.rev acc
        | Token.COMMA ->
            advance p;
            items (None :: acc)
        | _ ->
            let e = parse_expr p in
            if Token.equal (peek p) Token.COMMA then begin
              advance p;
              items (Some e :: acc)
            end
            else List.rev (Some e :: acc)
      in
      let l = items [] in
      eat p Token.RPAREN;
      Ast.mk_e ~loc (Ast.List l)
  | Token.K_ISSET ->
      advance p;
      eat p Token.LPAREN;
      let rec args acc =
        let e = parse_expr p in
        if Token.equal (peek p) Token.COMMA then begin
          advance p;
          args (e :: acc)
        end
        else List.rev (e :: acc)
      in
      let l = args [] in
      eat p Token.RPAREN;
      Ast.mk_e ~loc (Ast.Isset l)
  | Token.K_EMPTY ->
      advance p;
      eat p Token.LPAREN;
      let e = parse_expr p in
      eat p Token.RPAREN;
      Ast.mk_e ~loc (Ast.Empty e)
  | Token.K_EXIT ->
      advance p;
      let arg =
        if Token.equal (peek p) Token.LPAREN then begin
          advance p;
          if Token.equal (peek p) Token.RPAREN then begin
            advance p;
            None
          end
          else begin
            let e = parse_expr p in
            eat p Token.RPAREN;
            Some e
          end
        end
        else None
      in
      Ast.mk_e ~loc (Ast.Exit arg)
  | Token.K_FUNCTION -> parse_closure p ~static:false
  | Token.K_STATIC when Token.equal (peek_at p 1) Token.K_FUNCTION ->
      advance p;
      parse_closure p ~static:true
  | Token.K_STATIC when Token.equal (peek_at p 1) Token.DOUBLE_COLON ->
      advance p;
      (* late static binding: treat class name as "static" *)
      Ast.mk_e ~loc (Ast.Constant "static")
  | _ -> fail p "expected expression"

and interp_part_to_ast ~loc (part : Token.interp_part) : Ast.interp_part =
  match part with
  | Token.Part_str s -> Ast.Ip_str s
  | Token.Part_var v -> Ast.Ip_expr (Ast.mk_e ~loc (Ast.Var v))
  | Token.Part_index (v, sub) ->
      let idx =
        match sub with
        | Token.Sub_name s -> Ast.mk_e ~loc (Ast.String s)
        | Token.Sub_int n -> Ast.mk_e ~loc (Ast.Int n)
        | Token.Sub_var x -> Ast.mk_e ~loc (Ast.Var x)
      in
      Ast.Ip_expr (Ast.mk_e ~loc (Ast.Index (Ast.mk_e ~loc (Ast.Var v), Some idx)))
  | Token.Part_prop (v, prop) ->
      Ast.Ip_expr
        (Ast.mk_e ~loc (Ast.Prop (Ast.mk_e ~loc (Ast.Var v), Ast.Mem_ident prop)))
  | Token.Part_complex src -> Ast.Ip_expr (expr_of_string ~loc src)

(* Parse an isolated expression, used for the {$...} interpolation syntax. *)
and expr_of_string ~loc src : Ast.expr =
  let buf = Lexer.tokenize_buf ~file:loc.Loc.file ("<?php " ^ src ^ ";") in
  let sub = make_buf buf in
  let e = parse_expr sub in
  e

and parse_closure p ~static =
  let loc = cur_loc p in
  eat p Token.K_FUNCTION;
  if Token.equal (peek p) Token.AMP then advance p;
  let params = parse_params p in
  let uses =
    if Token.equal (peek p) Token.K_USE then begin
      advance p;
      eat p Token.LPAREN;
      let rec loop acc =
        let by_ref =
          if Token.equal (peek p) Token.AMP then begin
            advance p;
            true
          end
          else false
        in
        let v = variable p in
        let acc = (by_ref, v) :: acc in
        if Token.equal (peek p) Token.COMMA then begin
          advance p;
          loop acc
        end
        else List.rev acc
      in
      let l = loop [] in
      eat p Token.RPAREN;
      l
    end
    else []
  in
  (* optional return type *)
  if Token.equal (peek p) Token.COLON then begin
    advance p;
    if Token.equal (peek p) Token.QUESTION then advance p;
    ignore (ident p)
  end;
  eat p Token.LBRACE;
  let body = parse_stmts_until p [ Token.RBRACE ] in
  eat p Token.RBRACE;
  Ast.mk_e ~loc
    (Ast.Closure { cl_params = params; cl_uses = uses; cl_body = body; cl_static = static })

and parse_array_items p close =
  let rec loop acc =
    if Token.equal (peek p) close then List.rev acc
    else begin
      let by_ref =
        if Token.equal (peek p) Token.AMP then begin
          advance p;
          true
        end
        else false
      in
      let first = parse_expr p in
      let item =
        if Token.equal (peek p) Token.DOUBLE_ARROW then begin
          advance p;
          let vref =
            if Token.equal (peek p) Token.AMP then begin
              advance p;
              true
            end
            else false
          in
          let v = parse_expr p in
          { Ast.ai_key = Some first; ai_value = v; ai_by_ref = vref }
        end
        else { Ast.ai_key = None; ai_value = first; ai_by_ref = by_ref }
      in
      let acc = item :: acc in
      if Token.equal (peek p) Token.COMMA then begin
        advance p;
        loop acc
      end
      else List.rev acc
    end
  in
  loop []

and parse_args p : Ast.arg list =
  eat p Token.LPAREN;
  let rec loop acc =
    if Token.equal (peek p) Token.RPAREN then List.rev acc
    else begin
      let spread =
        if Token.equal (peek p) Token.ELLIPSIS then begin
          advance p;
          true
        end
        else false
      in
      (* legacy call-time by-ref &$x: skip the & *)
      if Token.equal (peek p) Token.AMP then advance p;
      let e = parse_expr p in
      let acc = { Ast.a_expr = e; a_spread = spread } :: acc in
      if Token.equal (peek p) Token.COMMA then begin
        advance p;
        loop acc
      end
      else List.rev acc
    end
  in
  let args = loop [] in
  eat p Token.RPAREN;
  args

and parse_postfix p (e : Ast.expr) : Ast.expr =
  let loc = cur_loc p in
  match peek p with
  | Token.LBRACKET ->
      advance p;
      if Token.equal (peek p) Token.RBRACKET then begin
        advance p;
        parse_postfix p (Ast.mk_e ~loc (Ast.Index (e, None)))
      end
      else begin
        let idx = parse_expr p in
        eat p Token.RBRACKET;
        parse_postfix p (Ast.mk_e ~loc (Ast.Index (e, Some idx)))
      end
  | Token.LBRACE when is_string_offset e ->
      (* legacy string offset $s{0} — parse and treat as Index *)
      advance p;
      let idx = parse_expr p in
      eat p Token.RBRACE;
      parse_postfix p (Ast.mk_e ~loc (Ast.Index (e, Some idx)))
  | Token.ARROW ->
      advance p;
      let mem =
        match peek p with
        | Token.IDENT m ->
            advance p;
            Ast.Mem_ident m
        | Token.VARIABLE v ->
            advance p;
            Ast.Mem_expr (Ast.mk_e ~loc (Ast.Var v))
        | Token.LBRACE ->
            advance p;
            let e2 = parse_expr p in
            eat p Token.RBRACE;
            Ast.Mem_expr e2
        | _ -> fail p "expected member name after ->"
      in
      if Token.equal (peek p) Token.LPAREN then begin
        let args = parse_args p in
        parse_postfix p (Ast.mk_e ~loc (Ast.Call (Ast.F_method (e, mem), args)))
      end
      else parse_postfix p (Ast.mk_e ~loc (Ast.Prop (e, mem)))
  | Token.DOUBLE_COLON -> (
      let cls =
        match e.e with
        | Ast.Constant c -> c
        | _ -> fail p "expected class name before ::"
      in
      advance p;
      match peek p with
      | Token.VARIABLE v ->
          advance p;
          parse_postfix p (Ast.mk_e ~loc (Ast.Static_prop (cls, v)))
      | Token.IDENT m ->
          advance p;
          if Token.equal (peek p) Token.LPAREN then begin
            let args = parse_args p in
            parse_postfix p (Ast.mk_e ~loc (Ast.Call (Ast.F_static (cls, m), args)))
          end
          else parse_postfix p (Ast.mk_e ~loc (Ast.Class_const (cls, m)))
      | Token.K_CLASS ->
          advance p;
          parse_postfix p (Ast.mk_e ~loc (Ast.Class_const (cls, "class")))
      | _ -> fail p "expected member after ::")
  | Token.LPAREN -> (
      match e.e with
      | Ast.Constant f ->
          let args = parse_args p in
          parse_postfix p (Ast.mk_e ~loc:e.eloc (Ast.Call (Ast.F_ident f, args)))
      | Ast.Var _ | Ast.Index _ | Ast.Prop _ | Ast.Closure _ | Ast.Call _ ->
          let args = parse_args p in
          parse_postfix p (Ast.mk_e ~loc (Ast.Call (Ast.F_var e, args)))
      | _ -> e)
  | Token.INC ->
      advance p;
      parse_postfix p (Ast.mk_e ~loc (Ast.Incdec (Ast.Post_inc, e)))
  | Token.DEC ->
      advance p;
      parse_postfix p (Ast.mk_e ~loc (Ast.Incdec (Ast.Post_dec, e)))
  | _ -> e

and is_string_offset (e : Ast.expr) =
  match e.e with Ast.Var _ | Ast.Index _ | Ast.Prop _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Statements.                                                         *)

and parse_params p : Ast.param list =
  eat p Token.LPAREN;
  let rec loop acc =
    if Token.equal (peek p) Token.RPAREN then List.rev acc
    else begin
      (* optional type hint: identifier or ?identifier or array keyword *)
      let hint =
        match peek p with
        | Token.QUESTION -> (
            advance p;
            match peek p with
            | Token.IDENT h ->
                advance p;
                Some h
            | Token.K_ARRAY ->
                advance p;
                Some "array"
            | _ -> fail p "expected type after ?")
        | Token.IDENT h when not (Token.equal (peek_at p 1) Token.LPAREN) ->
            advance p;
            Some h
        | Token.K_ARRAY ->
            advance p;
            Some "array"
        | _ -> None
      in
      let by_ref =
        if Token.equal (peek p) Token.AMP then begin
          advance p;
          true
        end
        else false
      in
      let variadic =
        if Token.equal (peek p) Token.ELLIPSIS then begin
          advance p;
          true
        end
        else false
      in
      let name = variable p in
      let default =
        if Token.equal (peek p) Token.EQ then begin
          advance p;
          Some (parse_expr p)
        end
        else None
      in
      let param =
        { Ast.p_name = name; p_default = default; p_by_ref = by_ref;
          p_hint = hint; p_variadic = variadic }
      in
      let acc = param :: acc in
      if Token.equal (peek p) Token.COMMA then begin
        advance p;
        loop acc
      end
      else List.rev acc
    end
  in
  let params = loop [] in
  eat p Token.RPAREN;
  params

and parse_stmts_until p closers : Ast.stmt list =
  let rec loop acc =
    let t = peek p in
    if Token.equal t Token.EOF || List.exists (Token.equal t) closers then List.rev acc
    else loop (parse_stmt p :: acc)
  in
  loop []

(* A statement body: either a brace block, a single statement, or (when
   [alt_end] is given) the alternative syntax [: ... end___;]. *)
and parse_body p ~alt_end : Ast.stmt list =
  match peek p with
  | Token.LBRACE ->
      advance p;
      let body = parse_stmts_until p [ Token.RBRACE ] in
      eat p Token.RBRACE;
      body
  | Token.COLON ->
      advance p;
      let closers = alt_end in
      let body = parse_stmts_until p closers in
      (* the caller consumes the end keyword *)
      body
  | _ -> [ parse_stmt p ]

and parse_stmt p : Ast.stmt =
  let loc = cur_loc p in
  match peek p with
  | Token.INLINE_HTML h ->
      advance p;
      Ast.mk_s ~loc (Ast.Inline_html h)
  | Token.SEMI ->
      advance p;
      Ast.mk_s ~loc Ast.Nop
  | Token.LBRACE ->
      advance p;
      let body = parse_stmts_until p [ Token.RBRACE ] in
      eat p Token.RBRACE;
      Ast.mk_s ~loc (Ast.Block body)
  | Token.K_IF -> parse_if p loc
  | Token.K_WHILE ->
      advance p;
      eat p Token.LPAREN;
      let cond = parse_expr p in
      eat p Token.RPAREN;
      let body = parse_body p ~alt_end:[ Token.K_ENDWHILE ] in
      if Token.equal (peek p) Token.K_ENDWHILE then begin
        advance p;
        eat_semi p
      end;
      Ast.mk_s ~loc (Ast.While (cond, body))
  | Token.K_DO ->
      advance p;
      let body = parse_body p ~alt_end:[] in
      eat p Token.K_WHILE;
      eat p Token.LPAREN;
      let cond = parse_expr p in
      eat p Token.RPAREN;
      eat_semi p;
      Ast.mk_s ~loc (Ast.Do_while (body, cond))
  | Token.K_FOR ->
      advance p;
      eat p Token.LPAREN;
      let init = parse_expr_list p Token.SEMI in
      eat p Token.SEMI;
      let cond = parse_expr_list p Token.SEMI in
      eat p Token.SEMI;
      let step = parse_expr_list p Token.RPAREN in
      eat p Token.RPAREN;
      let body = parse_body p ~alt_end:[ Token.K_ENDFOR ] in
      if Token.equal (peek p) Token.K_ENDFOR then begin
        advance p;
        eat_semi p
      end;
      Ast.mk_s ~loc (Ast.For (init, cond, step, body))
  | Token.K_FOREACH ->
      advance p;
      eat p Token.LPAREN;
      let subject = parse_expr p in
      eat p Token.K_AS;
      let first_ref =
        if Token.equal (peek p) Token.AMP then begin
          advance p;
          true
        end
        else false
      in
      let first = parse_expr p in
      let binding =
        if Token.equal (peek p) Token.DOUBLE_ARROW then begin
          advance p;
          let by_ref =
            if Token.equal (peek p) Token.AMP then begin
              advance p;
              true
            end
            else false
          in
          let v = parse_expr p in
          { Ast.fe_key = Some first; fe_by_ref = by_ref; fe_value = v }
        end
        else { Ast.fe_key = None; fe_by_ref = first_ref; fe_value = first }
      in
      eat p Token.RPAREN;
      let body = parse_body p ~alt_end:[ Token.K_ENDFOREACH ] in
      if Token.equal (peek p) Token.K_ENDFOREACH then begin
        advance p;
        eat_semi p
      end;
      Ast.mk_s ~loc (Ast.Foreach (subject, binding, body))
  | Token.K_SWITCH ->
      advance p;
      eat p Token.LPAREN;
      let subject = parse_expr p in
      eat p Token.RPAREN;
      let alt = Token.equal (peek p) Token.COLON in
      if alt then advance p else eat p Token.LBRACE;
      let closer = if alt then Token.K_ENDSWITCH else Token.RBRACE in
      let rec cases acc =
        match peek p with
        | t when Token.equal t closer ->
            advance p;
            if alt then eat_semi p;
            List.rev acc
        | Token.K_CASE ->
            advance p;
            let e = parse_expr p in
            (match peek p with
            | Token.COLON | Token.SEMI -> advance p
            | _ -> fail p "expected : after case");
            let body =
              parse_stmts_until p [ Token.K_CASE; Token.K_DEFAULT; closer ]
            in
            cases (Ast.Case (e, body) :: acc)
        | Token.K_DEFAULT ->
            advance p;
            (match peek p with
            | Token.COLON | Token.SEMI -> advance p
            | _ -> fail p "expected : after default");
            let body =
              parse_stmts_until p [ Token.K_CASE; Token.K_DEFAULT; closer ]
            in
            cases (Ast.Default body :: acc)
        | _ -> fail p "expected case, default or end of switch"
      in
      Ast.mk_s ~loc (Ast.Switch (subject, cases []))
  | Token.K_BREAK ->
      advance p;
      let n =
        match peek p with
        | Token.INT n ->
            advance p;
            Some n
        | _ -> None
      in
      eat_semi p;
      Ast.mk_s ~loc (Ast.Break n)
  | Token.K_CONTINUE ->
      advance p;
      let n =
        match peek p with
        | Token.INT n ->
            advance p;
            Some n
        | _ -> None
      in
      eat_semi p;
      Ast.mk_s ~loc (Ast.Continue n)
  | Token.K_RETURN ->
      advance p;
      let e =
        match peek p with
        | Token.SEMI | Token.EOF -> None
        | _ -> Some (parse_expr p)
      in
      eat_semi p;
      Ast.mk_s ~loc (Ast.Return e)
  | Token.K_GLOBAL ->
      advance p;
      let rec vars acc =
        let v = variable p in
        if Token.equal (peek p) Token.COMMA then begin
          advance p;
          vars (v :: acc)
        end
        else List.rev (v :: acc)
      in
      let l = vars [] in
      eat_semi p;
      Ast.mk_s ~loc (Ast.Global l)
  | Token.K_STATIC when is_static_var_decl p ->
      advance p;
      let rec vars acc =
        let v = variable p in
        let init =
          if Token.equal (peek p) Token.EQ then begin
            advance p;
            Some (parse_expr p)
          end
          else None
        in
        let acc = (v, init) :: acc in
        if Token.equal (peek p) Token.COMMA then begin
          advance p;
          vars acc
        end
        else List.rev acc
      in
      let l = vars [] in
      eat_semi p;
      Ast.mk_s ~loc (Ast.Static_vars l)
  | Token.K_UNSET ->
      advance p;
      eat p Token.LPAREN;
      let rec exprs acc =
        let e = parse_expr p in
        if Token.equal (peek p) Token.COMMA then begin
          advance p;
          exprs (e :: acc)
        end
        else List.rev (e :: acc)
      in
      let l = exprs [] in
      eat p Token.RPAREN;
      eat_semi p;
      Ast.mk_s ~loc (Ast.Unset l)
  | Token.K_THROW ->
      advance p;
      let e = parse_expr p in
      eat_semi p;
      Ast.mk_s ~loc (Ast.Throw e)
  | Token.K_TRY ->
      advance p;
      eat p Token.LBRACE;
      let body = parse_stmts_until p [ Token.RBRACE ] in
      eat p Token.RBRACE;
      let rec catches acc =
        if Token.equal (peek p) Token.K_CATCH then begin
          advance p;
          eat p Token.LPAREN;
          let rec types acc =
            let t = ident p in
            if Token.equal (peek p) Token.PIPE then begin
              advance p;
              types (t :: acc)
            end
            else List.rev (t :: acc)
          in
          let tys = types [] in
          let v =
            match peek p with
            | Token.VARIABLE v ->
                advance p;
                Some v
            | _ -> None
          in
          eat p Token.RPAREN;
          eat p Token.LBRACE;
          let cb = parse_stmts_until p [ Token.RBRACE ] in
          eat p Token.RBRACE;
          catches ({ Ast.c_types = tys; c_var = v; c_body = cb } :: acc)
        end
        else List.rev acc
      in
      let cs = catches [] in
      let fin =
        if Token.equal (peek p) Token.K_FINALLY then begin
          advance p;
          eat p Token.LBRACE;
          let fb = parse_stmts_until p [ Token.RBRACE ] in
          eat p Token.RBRACE;
          Some fb
        end
        else None
      in
      Ast.mk_s ~loc (Ast.Try (body, cs, fin))
  | Token.K_FUNCTION when is_function_decl p -> Ast.mk_s ~loc (Ast.Func_def (parse_func p))
  | Token.K_ABSTRACT | Token.K_FINAL | Token.K_CLASS | Token.K_INTERFACE ->
      parse_class p loc
  | Token.K_ECHO ->
      advance p;
      let rec exprs acc =
        let e = parse_expr p in
        if Token.equal (peek p) Token.COMMA then begin
          advance p;
          exprs (e :: acc)
        end
        else List.rev (e :: acc)
      in
      let l = exprs [] in
      eat_semi p;
      Ast.mk_s ~loc (Ast.Echo l)
  | Token.K_CONST ->
      advance p;
      let rec consts acc =
        let n = ident p in
        eat p Token.EQ;
        let e = parse_expr p in
        let acc = (n, e) :: acc in
        if Token.equal (peek p) Token.COMMA then begin
          advance p;
          consts acc
        end
        else List.rev acc
      in
      let l = consts [] in
      eat_semi p;
      Ast.mk_s ~loc (Ast.Const_def l)
  | Token.K_USE ->
      (* file-level `use Foo\Bar;` import: parse and ignore (namespaces are
         out of scope for the analysis) *)
      advance p;
      let rec skip () =
        match peek p with
        | Token.SEMI | Token.EOF -> ()
        | _ ->
            advance p;
            skip ()
      in
      skip ();
      eat_semi p;
      Ast.mk_s ~loc Ast.Nop
  | _ ->
      let e = parse_expr p in
      eat_semi p;
      Ast.mk_s ~loc (Ast.Expr_stmt e)

and is_static_var_decl p =
  match peek_at p 1 with Token.VARIABLE _ -> true | _ -> false

and is_function_decl p =
  match peek_at p 1 with
  | Token.IDENT _ -> true
  | Token.AMP -> ( match peek_at p 2 with Token.IDENT _ -> true | _ -> false)
  | _ -> false

and parse_if p loc : Ast.stmt =
  eat p Token.K_IF;
  eat p Token.LPAREN;
  let cond = parse_expr p in
  eat p Token.RPAREN;
  (* Alternative syntax handled uniformly: a branch body stops at
     elseif/else/endif when using colons. *)
  let alt = Token.equal (peek p) Token.COLON in
  let branch_body () =
    if alt then begin
      eat p Token.COLON;
      parse_stmts_until p [ Token.K_ELSEIF; Token.K_ELSE; Token.K_ENDIF ]
    end
    else parse_body p ~alt_end:[]
  in
  let first = (cond, branch_body ()) in
  let rec elifs acc =
    match peek p with
    | Token.K_ELSEIF ->
        advance p;
        eat p Token.LPAREN;
        let c = parse_expr p in
        eat p Token.RPAREN;
        let b = branch_body () in
        elifs ((c, b) :: acc)
    | Token.K_ELSE when Token.equal (peek_at p 1) Token.K_IF ->
        advance p;
        advance p;
        eat p Token.LPAREN;
        let c = parse_expr p in
        eat p Token.RPAREN;
        let b = branch_body () in
        elifs ((c, b) :: acc)
    | _ -> List.rev acc
  in
  let rest = elifs [] in
  let els =
    if Token.equal (peek p) Token.K_ELSE then begin
      advance p;
      Some (branch_body ())
    end
    else None
  in
  if alt then begin
    eat p Token.K_ENDIF;
    eat_semi p
  end;
  Ast.mk_s ~loc (Ast.If (first :: rest, els))

and parse_expr_list p stop =
  if Token.equal (peek p) stop then []
  else
    let rec loop acc =
      let e = parse_expr p in
      if Token.equal (peek p) Token.COMMA then begin
        advance p;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []

and parse_func p : Ast.func =
  let loc = cur_loc p in
  eat p Token.K_FUNCTION;
  let by_ref =
    if Token.equal (peek p) Token.AMP then begin
      advance p;
      true
    end
    else false
  in
  let name = ident p in
  let params = parse_params p in
  (* optional return type *)
  if Token.equal (peek p) Token.COLON then begin
    advance p;
    if Token.equal (peek p) Token.QUESTION then advance p;
    (match peek p with
    | Token.IDENT _ -> ignore (ident p)
    | Token.K_ARRAY -> advance p
    | _ -> fail p "expected return type")
  end;
  if Token.equal (peek p) Token.SEMI then begin
    (* abstract / interface method: empty body *)
    advance p;
    { Ast.f_name = name; f_params = params; f_body = []; f_by_ref = by_ref; f_loc = loc }
  end
  else begin
    eat p Token.LBRACE;
    let body = parse_stmts_until p [ Token.RBRACE ] in
    eat p Token.RBRACE;
    { Ast.f_name = name; f_params = params; f_body = body; f_by_ref = by_ref; f_loc = loc }
  end

and parse_class p loc : Ast.stmt =
  let abstract = ref false and final = ref false in
  let rec modifiers () =
    match peek p with
    | Token.K_ABSTRACT ->
        abstract := true;
        advance p;
        modifiers ()
    | Token.K_FINAL ->
        final := true;
        advance p;
        modifiers ()
    | _ -> ()
  in
  modifiers ();
  let interface =
    match peek p with
    | Token.K_CLASS ->
        advance p;
        false
    | Token.K_INTERFACE ->
        advance p;
        true
    | _ -> fail p "expected class or interface"
  in
  let name = ident p in
  let parent =
    if Token.equal (peek p) Token.K_EXTENDS then begin
      advance p;
      Some (ident p)
    end
    else None
  in
  let implements =
    if Token.equal (peek p) Token.K_IMPLEMENTS then begin
      advance p;
      let rec loop acc =
        let i = ident p in
        if Token.equal (peek p) Token.COMMA then begin
          advance p;
          loop (i :: acc)
        end
        else List.rev (i :: acc)
      in
      loop []
    end
    else []
  in
  eat p Token.LBRACE;
  let consts = ref [] and props = ref [] and methods = ref [] in
  let rec members () =
    if Token.equal (peek p) Token.RBRACE then ()
    else begin
      let vis = ref Ast.Public
      and static = ref false
      and m_abstract = ref false
      and m_final = ref false in
      let rec mods () =
        match peek p with
        | Token.K_PUBLIC ->
            vis := Ast.Public;
            advance p;
            mods ()
        | Token.K_PRIVATE ->
            vis := Ast.Private;
            advance p;
            mods ()
        | Token.K_PROTECTED ->
            vis := Ast.Protected;
            advance p;
            mods ()
        | Token.K_STATIC ->
            static := true;
            advance p;
            mods ()
        | Token.K_ABSTRACT ->
            m_abstract := true;
            advance p;
            mods ()
        | Token.K_FINAL ->
            m_final := true;
            advance p;
            mods ()
        | Token.K_VAR ->
            vis := Ast.Public;
            advance p;
            mods ()
        | _ -> ()
      in
      mods ();
      (match peek p with
      | Token.K_CONST ->
          advance p;
          let rec loop () =
            let n = ident p in
            eat p Token.EQ;
            let e = parse_expr p in
            consts := (n, e) :: !consts;
            if Token.equal (peek p) Token.COMMA then begin
              advance p;
              loop ()
            end
          in
          loop ();
          eat_semi p
      | Token.K_FUNCTION ->
          let f = parse_func p in
          methods :=
            { Ast.m_visibility = !vis; m_static = !static; m_abstract = !m_abstract;
              m_final = !m_final; m_func = f }
            :: !methods
      | Token.VARIABLE _ ->
          let rec loop () =
            let v = variable p in
            let d =
              if Token.equal (peek p) Token.EQ then begin
                advance p;
                Some (parse_expr p)
              end
              else None
            in
            props :=
              { Ast.pr_name = v; pr_static = !static; pr_visibility = !vis; pr_default = d }
              :: !props;
            if Token.equal (peek p) Token.COMMA then begin
              advance p;
              loop ()
            end
          in
          loop ();
          eat_semi p
      | _ -> fail p "expected class member");
      members ()
    end
  in
  members ();
  eat p Token.RBRACE;
  Ast.mk_s ~loc
    (Ast.Class_def
       {
         Ast.k_name = name;
         k_parent = parent;
         k_implements = implements;
         k_abstract = !abstract;
         k_final = !final;
         k_interface = interface;
         k_consts = List.rev !consts;
         k_props = List.rev !props;
         k_methods = List.rev !methods;
         k_loc = loc;
       })

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)

(** Parse an already-tokenized buffer.  This is the raw parse kernel —
    no lexing, no tracing — used by the bench harness to time the parse
    phase in isolation and by callers that already hold a buffer. *)
let parse_buf buf : Ast.program =
  let p = make_buf buf in
  let prog = parse_stmts_until p [] in
  (match peek p with
  | Token.EOF -> ()
  | _ -> fail p "trailing tokens after program");
  prog

(** Parse a full PHP source string (HTML + [<?php ... ?>] segments). *)
let parse_string ~file src : Ast.program =
  let buf = Lexer.tokenize_buf ~file src in
  Wap_obs.Trace.with_span ~cat:"php" "parse" ~args:[ ("file", file) ]
  @@ fun () -> parse_buf buf

(** Parse a file from disk. *)
let parse_file path : Ast.program = parse_string ~file:path (Io.read_file path)

(** Parse a standalone expression, e.g. from a weapon spec file. *)
let parse_expression ?(file = "<expr>") src : Ast.expr =
  let buf = Lexer.tokenize_buf ~file ("<?php " ^ src ^ ";") in
  let p = make_buf buf in
  let e = parse_expr p in
  e

(* ------------------------------------------------------------------ *)
(* Error-tolerant parsing.                                             *)

type recovered_error = { err_msg : string; err_loc : Loc.t }

(* Skip forward to a statement boundary: just past the next ';' at
   depth zero, just past one balanced brace group (a broken construct's
   body), or to a closing brace / EOF. *)
let rec skip_to_boundary p depth =
  match peek p with
  | Token.EOF -> ()
  | Token.SEMI when depth = 0 -> advance p
  | Token.LBRACE ->
      advance p;
      skip_to_boundary p (depth + 1)
  | Token.RBRACE ->
      (* at depth zero this is a stray closer left over from the broken
         construct: consume it *)
      advance p;
      if depth > 1 then skip_to_boundary p (depth - 1)
  | _ ->
      advance p;
      skip_to_boundary p depth

(** Parse a full source text, recovering from syntax errors by skipping
    to the next statement boundary.  Returns the statements that parsed
    plus the list of recovered errors — a scanner must not die on the
    one malformed file of an 8,000-file application. *)
let parse_string_tolerant ~file src : Ast.program * recovered_error list =
  match Lexer.tokenize_buf ~file src with
  | exception Lexer.Error (msg, loc) -> ([], [ { err_msg = msg; err_loc = loc } ])
  | buf ->
      Wap_obs.Trace.with_span ~cat:"php" "parse" ~args:[ ("file", file) ]
      @@ fun () ->
      let p = make_buf buf in
      let stmts = ref [] in
      let errors = ref [] in
      let rec loop () =
        match peek p with
        | Token.EOF -> ()
        | _ -> (
            let before = p.i in
            match parse_stmt p with
            | s ->
                stmts := s :: !stmts;
                loop ()
            | exception Error (msg, loc) ->
                errors := { err_msg = msg; err_loc = loc } :: !errors;
                if p.i = before then advance p;
                skip_to_boundary p 0;
                loop ()
            | exception Lexer.Error (msg, loc) ->
                errors := { err_msg = msg; err_loc = loc } :: !errors;
                if p.i = before then advance p;
                skip_to_boundary p 0;
                loop ())
      in
      loop ();
      (List.rev !stmts, List.rev !errors)
