(** Recursive-descent parser for the PHP subset.

    Expressions are parsed with precedence climbing following PHP's
    operator table.  Both brace-delimited and alternative
    ([if: ... endif;]) statement syntaxes are supported, since real-world
    PHP templates mix the two freely. *)

(** Syntax error with its position. *)
exception Error of string * Loc.t

(** [parse_string ~file src] parses a full PHP source text (inline HTML
    plus [<?php ... ?>] segments).

    @raise Error on syntax errors; @raise Lexer.Error on lexical ones. *)
val parse_string : file:string -> string -> Ast.program

(** Parse an already-tokenized buffer (see {!Lexer.tokenize_buf} and
    {!Token_buf.of_list}).  Raw parse kernel: no lexing, no tracing —
    the bench harness uses it to time the parse phase in isolation.

    @raise Error on syntax errors. *)
val parse_buf : Token_buf.t -> Ast.program

(** Parse a file from disk. *)
val parse_file : string -> Ast.program

(** Parse a standalone expression, e.g. from a weapon specification. *)
val parse_expression : ?file:string -> string -> Ast.expr

(** An error skipped over during tolerant parsing. *)
type recovered_error = { err_msg : string; err_loc : Loc.t }

(** Parse a full source text, recovering from syntax errors by skipping
    to the next statement boundary.  Returns the statements that parsed
    plus the recovered errors — a scanner must not die on the one
    malformed file of an 8,000-file application. *)
val parse_string_tolerant :
  file:string -> string -> Ast.program * recovered_error list
