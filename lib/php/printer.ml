(** Pretty-printer that turns the AST back into parseable PHP.

    Used by the code corrector to emit fixed source files, and by the
    round-trip property tests ([print] is idempotent modulo one
    normalizing pass through the parser).  Output favours correctness
    over beauty: operands are parenthesized whenever precedence could be
    ambiguous. *)

open Ast

let buf_add = Buffer.add_string

(* Precedence levels mirror Parser.binop_info. *)
let binop_prec = function
  | Bool_or -> 10
  | Bool_and -> 11
  | Bit_or -> 12
  | Bit_xor -> 13
  | Bit_and -> 14
  | Eq_eq | Neq | Identical | Not_identical -> 15
  | Lt | Gt | Le | Ge | Spaceship -> 16
  | Shl | Shr -> 17
  | Plus | Minus | Concat -> 18
  | Mul | Div | Mod -> 19
  | Instanceof -> 20
  | Pow -> 22
  | Coalesce -> 9
  | Bool_xor -> 10

let binop_sym = function
  | Concat -> "."
  | Plus -> "+"
  | Minus -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Pow -> "**"
  | Eq_eq -> "=="
  | Neq -> "!="
  | Identical -> "==="
  | Not_identical -> "!=="
  | Lt -> "<"
  | Gt -> ">"
  | Le -> "<="
  | Ge -> ">="
  | Spaceship -> "<=>"
  | Bool_and -> "&&"
  | Bool_or -> "||"
  | Bool_xor -> "xor"
  | Bit_and -> "&"
  | Bit_or -> "|"
  | Bit_xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Coalesce -> "??"
  | Instanceof -> "instanceof"

let assign_sym = function
  | A_eq -> "="
  | A_concat -> ".="
  | A_plus -> "+="
  | A_minus -> "-="
  | A_mul -> "*="
  | A_div -> "/="
  | A_mod -> "%="
  | A_pow -> "**="
  | A_bit_and -> "&="
  | A_bit_or -> "|="
  | A_bit_xor -> "^="
  | A_shl -> "<<="
  | A_shr -> ">>="
  | A_coalesce -> "??="

let cast_sym = function
  | C_int -> "(int)"
  | C_float -> "(float)"
  | C_string -> "(string)"
  | C_bool -> "(bool)"
  | C_array -> "(array)"
  | C_object -> "(object)"

let include_sym = function
  | Inc -> "include"
  | Inc_once -> "include_once"
  | Req -> "require"
  | Req_once -> "require_once"

let escape_single s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\'' -> buf_add b "\\'"
      | '\\' -> buf_add b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Escaping for interpolated contexts.  [quote] is the active delimiter
   ('"' for double-quoted strings, '`' for backticks): only the active
   delimiter is escaped, so a backtick inside a double-quoted string (or
   a double quote inside a command) stays literal. *)
let escape_interp ~quote s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = quote then begin
        Buffer.add_char b '\\';
        Buffer.add_char b quote
      end
      else
        match c with
        | '\\' -> buf_add b "\\\\"
        | '$' -> buf_add b "\\$"
        | '\n' -> buf_add b "\\n"
        | '\t' -> buf_add b "\\t"
        | '\r' -> buf_add b "\\r"
        | c when Char.code c < 32 -> buf_add b (Printf.sprintf "\\x%02x" (Char.code c))
        | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_double = escape_interp ~quote:'"'
let escape_backtick = escape_interp ~quote:'`'

(* Is the literal printable with single quotes without escape surprises? *)
let string_needs_double s =
  String.exists (fun c -> Char.code c < 32) s

let rec expr_to_buf b (e : expr) = expr_prec b e 0

(* [ctx] is the minimum precedence required by the surrounding context; we
   parenthesize when the node binds looser. Assignments/ternaries are
   level ~2. *)
and expr_prec b (e : expr) ctx =
  let paren need body =
    if need then begin
      buf_add b "(";
      body ();
      buf_add b ")"
    end
    else body ()
  in
  match e.e with
  | Int n -> buf_add b (string_of_int n)
  | Float f ->
      (* Shortest representation that parses back to the same double:
         %.12g is enough for the values real code writes, but e.g.
         0.30000000000000004 needs 17 digits, and an overflowed literal
         (1e309, 0xFFFFFFFFFFFFFFFF) is infinite — "%g" would print
         "inf", which is not PHP. *)
      let s =
        if f = infinity then "1.0e400"
        else if f = neg_infinity then "-1.0e400"
        else if f <> f then "(0.0/0.0)" (* unreachable from parsed source *)
        else
          let rec shortest = function
            | [] -> Printf.sprintf "%.17g" f
            | p :: rest ->
                let s = Printf.sprintf "%.*g" p f in
                if float_of_string s = f then s else shortest rest
          in
          let s = shortest [ 12; 15; 16 ] in
          if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
      in
      buf_add b s
  | String s ->
      if string_needs_double s then buf_add b ("\"" ^ escape_double s ^ "\"")
      else buf_add b ("'" ^ escape_single s ^ "'")
  | Interp parts ->
      buf_add b "\"";
      List.iter
        (function
          | Ip_str s -> buf_add b (escape_double s)
          | Ip_expr e ->
              buf_add b "{";
              expr_prec b e 0;
              buf_add b "}")
        parts;
      buf_add b "\""
  | Backtick parts ->
      buf_add b "`";
      List.iter
        (function
          | Ip_str s -> buf_add b (escape_backtick s)
          | Ip_expr e ->
              buf_add b "{";
              expr_prec b e 0;
              buf_add b "}")
        parts;
      buf_add b "`"
  | Var v -> buf_add b ("$" ^ v)
  | Var_var e2 ->
      buf_add b "$";
      expr_prec b e2 30
  | Constant c -> buf_add b c
  | Array_lit items ->
      buf_add b "array(";
      List.iteri
        (fun i it ->
          if i > 0 then buf_add b ", ";
          (match it.ai_key with
          | Some k ->
              expr_prec b k 3;
              buf_add b " => "
          | None -> ());
          if it.ai_by_ref then buf_add b "&";
          expr_prec b it.ai_value 3)
        items;
      buf_add b ")"
  | Index (e2, idx) ->
      expr_prec b e2 30;
      buf_add b "[";
      (match idx with Some i -> expr_prec b i 0 | None -> ());
      buf_add b "]"
  | Prop (e2, m) ->
      expr_prec b e2 30;
      buf_add b "->";
      member_to_buf b m
  | Static_prop (c, v) -> buf_add b (c ^ "::$" ^ v)
  | Class_const (c, k) -> buf_add b (c ^ "::" ^ k)
  | Call (callee, args) ->
      callee_to_buf b callee;
      buf_add b "(";
      List.iteri
        (fun i a ->
          if i > 0 then buf_add b ", ";
          if a.a_spread then buf_add b "...";
          expr_prec b a.a_expr 3)
        args;
      buf_add b ")"
  | New (c, args) ->
      paren (ctx > 21) (fun () ->
          buf_add b ("new " ^ c);
          buf_add b "(";
          List.iteri
            (fun i a ->
              if i > 0 then buf_add b ", ";
              expr_prec b a.a_expr 3)
            args;
          buf_add b ")")
  | Clone e2 ->
      paren (ctx > 21) (fun () ->
          buf_add b "clone ";
          expr_prec b e2 21)
  | Binop (op, l, r) ->
      let prec = binop_prec op in
      (* ?? and ** associate to the right in PHP (and in Parser), so a
         left-nested tree needs parentheses on the left, not the right *)
      let right_assoc = match op with Coalesce | Pow -> true | _ -> false in
      paren (ctx > prec) (fun () ->
          expr_prec b l (if right_assoc then prec + 1 else prec);
          buf_add b (" " ^ binop_sym op ^ " ");
          expr_prec b r (if right_assoc then prec else prec + 1))
  | Unop (op, e2) ->
      paren (ctx > 21) (fun () ->
          let sym =
            match op with
            | Neg -> "-"
            | Uplus -> "+"
            | Not -> "!"
            | Bit_not -> "~"
            | Silence -> "@"
          in
          buf_add b sym;
          let ob = Buffer.create 16 in
          expr_prec ob e2 21;
          let rendered = Buffer.contents ob in
          (* "-" followed by "-$x" would re-lex as the "--" decrement
             token; keep the sign and the operand apart *)
          let clash =
            (op = Neg || op = Uplus)
            && rendered <> ""
            && rendered.[0] = sym.[0]
          in
          if clash then begin
            buf_add b "(";
            buf_add b rendered;
            buf_add b ")"
          end
          else buf_add b rendered)
  | Incdec (k, e2) ->
      paren (ctx > 21) (fun () ->
          match k with
          | Pre_inc ->
              buf_add b "++";
              expr_prec b e2 21
          | Pre_dec ->
              buf_add b "--";
              expr_prec b e2 21
          | Post_inc ->
              expr_prec b e2 21;
              buf_add b "++"
          | Post_dec ->
              expr_prec b e2 21;
              buf_add b "--")
  | Assign (op, l, r) ->
      paren (ctx > 2) (fun () ->
          expr_prec b l 3;
          buf_add b (" " ^ assign_sym op ^ " ");
          expr_prec b r 2)
  | Assign_ref (l, r) ->
      paren (ctx > 2) (fun () ->
          expr_prec b l 3;
          buf_add b " = &";
          expr_prec b r 2)
  | Ternary (c, t, f) ->
      paren (ctx > 3) (fun () ->
          expr_prec b c 4;
          (match t with
          | Some t ->
              buf_add b " ? ";
              expr_prec b t 4
          | None -> buf_add b " ?");
          buf_add b " : ";
          expr_prec b f 3)
  | Cast (c, e2) ->
      paren (ctx > 21) (fun () ->
          buf_add b (cast_sym c);
          buf_add b " ";
          expr_prec b e2 21)
  | Isset es ->
      buf_add b "isset(";
      List.iteri
        (fun i e2 ->
          if i > 0 then buf_add b ", ";
          expr_prec b e2 0)
        es;
      buf_add b ")"
  | Empty e2 ->
      buf_add b "empty(";
      expr_prec b e2 0;
      buf_add b ")"
  | Exit None -> buf_add b "exit"
  | Exit (Some e2) ->
      buf_add b "exit(";
      expr_prec b e2 0;
      buf_add b ")"
  | Print e2 ->
      paren (ctx > 2) (fun () ->
          buf_add b "print ";
          expr_prec b e2 2)
  | Include (k, e2) ->
      paren (ctx > 2) (fun () ->
          buf_add b (include_sym k ^ " ");
          expr_prec b e2 2)
  | List es ->
      buf_add b "list(";
      List.iteri
        (fun i e2 ->
          if i > 0 then buf_add b ", ";
          match e2 with Some e2 -> expr_prec b e2 0 | None -> ())
        es;
      buf_add b ")"
  | Closure c ->
      paren (ctx > 2) (fun () ->
          if c.cl_static then buf_add b "static ";
          buf_add b "function ";
          params_to_buf b c.cl_params;
          if c.cl_uses <> [] then begin
            buf_add b " use (";
            List.iteri
              (fun i (by_ref, v) ->
                if i > 0 then buf_add b ", ";
                if by_ref then buf_add b "&";
                buf_add b ("$" ^ v))
              c.cl_uses;
            buf_add b ")"
          end;
          buf_add b " {\n";
          stmts_to_buf b ~indent:1 c.cl_body;
          buf_add b "}")

and member_to_buf b = function
  | Mem_ident m -> buf_add b m
  | Mem_expr e -> (
      match e.e with
      | Var v -> buf_add b ("$" ^ v)
      | _ ->
          buf_add b "{";
          expr_prec b e 0;
          buf_add b "}")

and callee_to_buf b = function
  | F_ident f -> buf_add b f
  | F_var e -> expr_prec b e 30
  | F_method (e, m) ->
      expr_prec b e 30;
      buf_add b "->";
      member_to_buf b m
  | F_static (c, m) -> buf_add b (c ^ "::" ^ m)

and params_to_buf b params =
  buf_add b "(";
  List.iteri
    (fun i p ->
      if i > 0 then buf_add b ", ";
      (match p.p_hint with
      | Some h ->
          buf_add b h;
          buf_add b " "
      | None -> ());
      if p.p_by_ref then buf_add b "&";
      if p.p_variadic then buf_add b "...";
      buf_add b ("$" ^ p.p_name);
      match p.p_default with
      | Some d ->
          buf_add b " = ";
          expr_prec b d 3
      | None -> ())
    params;
  buf_add b ")"

and indent_to_buf b n = buf_add b (String.make (n * 4) ' ')

and stmt_to_buf b ~indent (s : stmt) =
  let ind () = indent_to_buf b indent in
  match s.s with
  | Expr_stmt e ->
      ind ();
      expr_to_buf b e;
      buf_add b ";\n"
  | Echo es ->
      ind ();
      buf_add b "echo ";
      List.iteri
        (fun i e ->
          if i > 0 then buf_add b ", ";
          expr_prec b e 2)
        es;
      buf_add b ";\n"
  | If (branches, els) ->
      List.iteri
        (fun i (cond, body) ->
          ind ();
          buf_add b (if i = 0 then "if (" else "elseif (");
          expr_to_buf b cond;
          buf_add b ") {\n";
          stmts_to_buf b ~indent:(indent + 1) body;
          ind ();
          buf_add b "}\n")
        branches;
      (match els with
      | Some body ->
          ind ();
          buf_add b "else {\n";
          stmts_to_buf b ~indent:(indent + 1) body;
          ind ();
          buf_add b "}\n"
      | None -> ())
  | While (cond, body) ->
      ind ();
      buf_add b "while (";
      expr_to_buf b cond;
      buf_add b ") {\n";
      stmts_to_buf b ~indent:(indent + 1) body;
      ind ();
      buf_add b "}\n"
  | Do_while (body, cond) ->
      ind ();
      buf_add b "do {\n";
      stmts_to_buf b ~indent:(indent + 1) body;
      ind ();
      buf_add b "} while (";
      expr_to_buf b cond;
      buf_add b ");\n"
  | For (init, cond, step, body) ->
      ind ();
      buf_add b "for (";
      comma_exprs b init;
      buf_add b "; ";
      comma_exprs b cond;
      buf_add b "; ";
      comma_exprs b step;
      buf_add b ") {\n";
      stmts_to_buf b ~indent:(indent + 1) body;
      ind ();
      buf_add b "}\n"
  | Foreach (subject, binding, body) ->
      ind ();
      buf_add b "foreach (";
      expr_to_buf b subject;
      buf_add b " as ";
      (match binding.fe_key with
      | Some k ->
          expr_to_buf b k;
          buf_add b " => "
      | None -> ());
      if binding.fe_by_ref then buf_add b "&";
      expr_to_buf b binding.fe_value;
      buf_add b ") {\n";
      stmts_to_buf b ~indent:(indent + 1) body;
      ind ();
      buf_add b "}\n"
  | Switch (subject, cases) ->
      ind ();
      buf_add b "switch (";
      expr_to_buf b subject;
      buf_add b ") {\n";
      List.iter
        (fun case ->
          indent_to_buf b (indent + 1);
          (match case with
          | Case (e, body) ->
              buf_add b "case ";
              expr_to_buf b e;
              buf_add b ":\n";
              stmts_to_buf b ~indent:(indent + 2) body
          | Default body ->
              buf_add b "default:\n";
              stmts_to_buf b ~indent:(indent + 2) body))
        cases;
      ind ();
      buf_add b "}\n"
  | Break n ->
      ind ();
      buf_add b "break";
      (match n with Some n -> buf_add b (" " ^ string_of_int n) | None -> ());
      buf_add b ";\n"
  | Continue n ->
      ind ();
      buf_add b "continue";
      (match n with Some n -> buf_add b (" " ^ string_of_int n) | None -> ());
      buf_add b ";\n"
  | Return e ->
      ind ();
      buf_add b "return";
      (match e with
      | Some e ->
          buf_add b " ";
          expr_to_buf b e
      | None -> ());
      buf_add b ";\n"
  | Global vs ->
      ind ();
      buf_add b "global ";
      buf_add b (String.concat ", " (List.map (fun v -> "$" ^ v) vs));
      buf_add b ";\n"
  | Static_vars vs ->
      ind ();
      buf_add b "static ";
      List.iteri
        (fun i (v, init) ->
          if i > 0 then buf_add b ", ";
          buf_add b ("$" ^ v);
          match init with
          | Some e ->
              buf_add b " = ";
              expr_prec b e 3
          | None -> ())
        vs;
      buf_add b ";\n"
  | Unset es ->
      ind ();
      buf_add b "unset(";
      comma_exprs b es;
      buf_add b ");\n"
  | Throw e ->
      ind ();
      buf_add b "throw ";
      expr_to_buf b e;
      buf_add b ";\n"
  | Try (body, catches, fin) ->
      ind ();
      buf_add b "try {\n";
      stmts_to_buf b ~indent:(indent + 1) body;
      ind ();
      buf_add b "}";
      List.iter
        (fun c ->
          buf_add b (" catch (" ^ String.concat " | " c.c_types);
          (match c.c_var with Some v -> buf_add b (" $" ^ v) | None -> ());
          buf_add b ") {\n";
          stmts_to_buf b ~indent:(indent + 1) c.c_body;
          ind ();
          buf_add b "}")
        catches;
      (match fin with
      | Some body ->
          buf_add b " finally {\n";
          stmts_to_buf b ~indent:(indent + 1) body;
          ind ();
          buf_add b "}"
      | None -> ());
      buf_add b "\n"
  | Func_def f ->
      ind ();
      func_to_buf b ~indent f
  | Class_def k ->
      ind ();
      if k.k_abstract then buf_add b "abstract ";
      if k.k_final then buf_add b "final ";
      buf_add b (if k.k_interface then "interface " else "class ");
      buf_add b k.k_name;
      (match k.k_parent with Some par -> buf_add b (" extends " ^ par) | None -> ());
      if k.k_implements <> [] then
        buf_add b (" implements " ^ String.concat ", " k.k_implements);
      buf_add b " {\n";
      List.iter
        (fun (n, e) ->
          indent_to_buf b (indent + 1);
          buf_add b ("const " ^ n ^ " = ");
          expr_to_buf b e;
          buf_add b ";\n")
        k.k_consts;
      List.iter
        (fun pr ->
          indent_to_buf b (indent + 1);
          buf_add b
            (match pr.pr_visibility with
            | Public -> "public "
            | Private -> "private "
            | Protected -> "protected ");
          if pr.pr_static then buf_add b "static ";
          buf_add b ("$" ^ pr.pr_name);
          (match pr.pr_default with
          | Some d ->
              buf_add b " = ";
              expr_prec b d 3
          | None -> ());
          buf_add b ";\n")
        k.k_props;
      List.iter
        (fun m ->
          indent_to_buf b (indent + 1);
          buf_add b
            (match m.m_visibility with
            | Public -> "public "
            | Private -> "private "
            | Protected -> "protected ");
          if m.m_static then buf_add b "static ";
          if m.m_abstract then buf_add b "abstract ";
          if m.m_final then buf_add b "final ";
          if m.m_abstract then begin
            buf_add b ("function " ^ m.m_func.f_name);
            params_to_buf b m.m_func.f_params;
            buf_add b ";\n"
          end
          else func_to_buf b ~indent:(indent + 1) m.m_func)
        k.k_methods;
      ind ();
      buf_add b "}\n"
  | Block body ->
      ind ();
      buf_add b "{\n";
      stmts_to_buf b ~indent:(indent + 1) body;
      ind ();
      buf_add b "}\n"
  | Inline_html h ->
      buf_add b "?>";
      buf_add b h;
      buf_add b "<?php\n"
  | Const_def cs ->
      ind ();
      buf_add b "const ";
      List.iteri
        (fun i (n, e) ->
          if i > 0 then buf_add b ", ";
          buf_add b (n ^ " = ");
          expr_prec b e 3)
        cs;
      buf_add b ";\n"
  | Nop -> ()

and func_to_buf b ~indent f =
  buf_add b "function ";
  if f.f_by_ref then buf_add b "&";
  buf_add b f.f_name;
  params_to_buf b f.f_params;
  buf_add b " {\n";
  stmts_to_buf b ~indent:(indent + 1) f.f_body;
  indent_to_buf b indent;
  buf_add b "}\n"

and comma_exprs b es =
  List.iteri
    (fun i e ->
      if i > 0 then buf_add b ", ";
      expr_to_buf b e)
    es

and stmts_to_buf b ~indent stmts = List.iter (stmt_to_buf b ~indent) stmts

(** Render an expression as PHP source. *)
let expr_to_string e =
  let b = Buffer.create 64 in
  expr_to_buf b e;
  Buffer.contents b

(** Render a statement as PHP source (no [<?php] header). *)
let stmt_to_string s =
  let b = Buffer.create 128 in
  stmt_to_buf b ~indent:0 s;
  Buffer.contents b

(** Render a whole program as a PHP file, including the [<?php] header. *)
let program_to_string (prog : program) =
  let b = Buffer.create 1024 in
  buf_add b "<?php\n";
  stmts_to_buf b ~indent:0 prog;
  Buffer.contents b
