(** Flat, growable token buffer — the struct-of-arrays handoff between
    the lexer and the parser.

    The boxed [(Token.t * Loc.t) list] the lexer used to build spent
    three words of list cell plus four words of [Loc.t] record per
    token, then the parser copied the whole thing into an array before
    reading a single token.  This module stores the same stream as
    parallel arrays the parser consumes by index:

    - [tags]: one byte per token.  Constant constructors (keywords,
      punctuation, operators, [EOF] — the overwhelming majority of a
      real token stream) store their own runtime representation;
      payload-carrying constructors store [0x80 lor Obj.tag].
    - [payload]: for payload-carrying tokens, an index into [pool];
      unused otherwise.
    - [locs]: line and column packed into one immediate int
      ([line lsl col_bits lor col]).  The file name is shared once per
      buffer, so a location costs 8 bytes instead of a 4-word record.
    - [pool]: the boxed tokens ([INT], [IDENT], [INTERP_STRING], ...),
      in emission order.

    Reading a token back allocates nothing: constant tags are
    reconstructed as the immediate they are, boxed tags are fetched
    from [pool].  Only {!loc} materializes — a fresh [Loc.t] per call,
    which the parser caches per cursor position because the AST retains
    at most one [Loc.t] per token anyway. *)

type t = {
  file : string;
  mutable n : int;
  mutable tags : Bytes.t;
  mutable payload : int array;
  mutable locs : int array;
  mutable pool : Token.t array;
  mutable pool_n : int;
}

(* 31 bits of column: a column only exceeds 2^31 - 1 on a single source
   line longer than 2 GiB, beyond any input the scanner accepts. *)
let col_bits = 31
let col_mask = (1 lsl col_bits) - 1

(* ------------------------------------------------------------------ *)
(* Tag codes.                                                           *)

(* [Token.t]'s constant constructors are immediates [0 .. n-1] in
   declaration order and its payload constructors carry [Obj.tag]
   [0 .. m-1]; with 106 constant and 8 payload constructors both fit a
   byte with the high bit telling them apart.  The [Obj] round-trip is
   safe by construction: [code_of] only ever reads representations the
   compiler produced, and [tok] only rebuilds immediates from codes
   [code_of] wrote.  [test_php.ml] round-trips every constructor. *)

let boxed_bit = 0x80

let code_of (tok : Token.t) : int =
  let r = Obj.repr tok in
  if Obj.is_int r then (Obj.obj r : int) else boxed_bit lor Obj.tag r

let const_of_code (code : int) : Token.t = Obj.magic (code : int)

(* ------------------------------------------------------------------ *)

let create ?(capacity = 256) ~file () =
  {
    file;
    n = 0;
    tags = Bytes.create capacity;
    payload = Array.make capacity 0;
    locs = Array.make capacity 0;
    pool = Array.make 64 Token.EOF;
    pool_n = 0;
  }

let file t = t.file
let length t = t.n

let grow t =
  let cap = Bytes.length t.tags in
  let cap' = cap * 2 in
  let tags' = Bytes.create cap' in
  Bytes.blit t.tags 0 tags' 0 cap;
  t.tags <- tags';
  let payload' = Array.make cap' 0 in
  Array.blit t.payload 0 payload' 0 cap;
  t.payload <- payload';
  let locs' = Array.make cap' 0 in
  Array.blit t.locs 0 locs' 0 cap;
  t.locs <- locs'

let pool_add t tok =
  if t.pool_n = Array.length t.pool then begin
    let pool' = Array.make (2 * t.pool_n) Token.EOF in
    Array.blit t.pool 0 pool' 0 t.pool_n;
    t.pool <- pool'
  end;
  t.pool.(t.pool_n) <- tok;
  t.pool_n <- t.pool_n + 1;
  t.pool_n - 1

let push t tok ~line ~col =
  if t.n = Bytes.length t.tags then grow t;
  let code = code_of tok in
  Bytes.unsafe_set t.tags t.n (Char.unsafe_chr code);
  if code land boxed_bit <> 0 then t.payload.(t.n) <- pool_add t tok;
  t.locs.(t.n) <- (line lsl col_bits) lor (col land col_mask);
  t.n <- t.n + 1

let tok t i =
  let code = Char.code (Bytes.get t.tags i) in
  if code land boxed_bit = 0 then const_of_code code
  else t.pool.(t.payload.(i))

let line t i = t.locs.(i) lsr col_bits
let col t i = t.locs.(i) land col_mask

let loc t i = Loc.make ~file:t.file ~line:(line t i) ~col:(col t i)

let last_tok t = if t.n = 0 then None else Some (tok t (t.n - 1))

(* ------------------------------------------------------------------ *)
(* Compatibility bridges.                                               *)

let to_list t : (Token.t * Loc.t) list =
  let rec go i acc = if i < 0 then acc else go (i - 1) ((tok t i, loc t i) :: acc) in
  go (t.n - 1) []

let of_list ~file toks : t =
  let t = create ~capacity:(max 16 (List.length toks)) ~file () in
  List.iter
    (fun (tk, (l : Loc.t)) -> push t tk ~line:l.Loc.line ~col:l.Loc.col)
    toks;
  t
