(** Flat, growable token buffer: the struct-of-arrays handoff between
    the lexer and the parser.

    Layout: a byte tag per token, a payload index into a pool of boxed
    tokens, and line/column packed into one immediate int — the file
    name is shared once per buffer.  Reading a token back allocates
    nothing; only {!loc} materializes a fresh [Loc.t]. *)

type t

(** An empty buffer for tokens of [file]. *)
val create : ?capacity:int -> file:string -> unit -> t

val file : t -> string
val length : t -> int

(** Append a token at line/col (line 1-based, col 0-based). *)
val push : t -> Token.t -> line:int -> col:int -> unit

(** [tok t i] is the [i]-th token.  Allocation-free. *)
val tok : t -> int -> Token.t

val line : t -> int -> int
val col : t -> int -> int

(** [loc t i] materializes the [i]-th token's location. *)
val loc : t -> int -> Loc.t

(** The most recently pushed token, if any.  Allocation-free for
    constant tokens. *)
val last_tok : t -> Token.t option

(** The boxed list the pre-buffer lexer produced — compat bridge. *)
val to_list : t -> (Token.t * Loc.t) list

(** Build a buffer from a located token list (locations keep only
    line/col; the buffer's [file] is [~file]). *)
val of_list : file:string -> (Token.t * Loc.t) list -> t
