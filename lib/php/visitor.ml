(** Generic traversals over the PHP AST.

    The detectors and the symptom collector both need to walk every
    expression and statement; these folds centralize the recursion so
    each client only writes the interesting cases. *)

open Ast

(** [fold_expr f acc e] applies [f] to [e] and every sub-expression,
    in pre-order. *)
let rec fold_expr (f : 'a -> expr -> 'a) (acc : 'a) (e : expr) : 'a =
  let acc = f acc e in
  match e.e with
  | Int _ | Float _ | String _ | Var _ | Constant _ | Static_prop _ | Class_const _ ->
      acc
  | Interp parts | Backtick parts ->
      List.fold_left
        (fun acc -> function Ip_str _ -> acc | Ip_expr e -> fold_expr f acc e)
        acc parts
  | Var_var e1 | Clone e1 | Unop (_, e1) | Incdec (_, e1) | Cast (_, e1)
  | Empty e1 | Print e1 | Include (_, e1) ->
      fold_expr f acc e1
  | Array_lit items ->
      List.fold_left
        (fun acc it ->
          let acc =
            match it.ai_key with Some k -> fold_expr f acc k | None -> acc
          in
          fold_expr f acc it.ai_value)
        acc items
  | Index (e1, idx) -> (
      let acc = fold_expr f acc e1 in
      match idx with Some i -> fold_expr f acc i | None -> acc)
  | Prop (e1, m) -> (
      let acc = fold_expr f acc e1 in
      match m with Mem_expr e2 -> fold_expr f acc e2 | Mem_ident _ -> acc)
  | Call (callee, args) ->
      let acc =
        match callee with
        | F_ident _ | F_static _ -> acc
        | F_var e1 -> fold_expr f acc e1
        | F_method (e1, m) -> (
            let acc = fold_expr f acc e1 in
            match m with Mem_expr e2 -> fold_expr f acc e2 | Mem_ident _ -> acc)
      in
      List.fold_left (fun acc a -> fold_expr f acc a.a_expr) acc args
  | New (_, args) -> List.fold_left (fun acc a -> fold_expr f acc a.a_expr) acc args
  | Binop (_, l, r) | Assign (_, l, r) | Assign_ref (l, r) ->
      fold_expr f (fold_expr f acc l) r
  | Ternary (c, t, e2) -> (
      let acc = fold_expr f acc c in
      let acc = match t with Some t -> fold_expr f acc t | None -> acc in
      fold_expr f acc e2)
  | Isset es -> List.fold_left (fold_expr f) acc es
  | Exit e1 -> ( match e1 with Some e1 -> fold_expr f acc e1 | None -> acc)
  | List es ->
      List.fold_left
        (fun acc -> function Some e1 -> fold_expr f acc e1 | None -> acc)
        acc es
  | Closure c -> fold_stmts_with_expr f acc c.cl_body

(** [fold_stmts_with_expr f acc stmts] folds [f] over every expression
    reachable from [stmts], including nested functions and classes. *)
and fold_stmts_with_expr f acc stmts =
  List.fold_left (fold_stmt_with_expr f) acc stmts

and fold_stmt_with_expr f acc (s : stmt) =
  match s.s with
  | Expr_stmt e | Throw e -> fold_expr f acc e
  | Echo es | Unset es -> List.fold_left (fold_expr f) acc es
  | If (branches, els) ->
      let acc =
        List.fold_left
          (fun acc (c, body) -> fold_stmts_with_expr f (fold_expr f acc c) body)
          acc branches
      in
      (match els with Some body -> fold_stmts_with_expr f acc body | None -> acc)
  | While (c, body) -> fold_stmts_with_expr f (fold_expr f acc c) body
  | Do_while (body, c) -> fold_expr f (fold_stmts_with_expr f acc body) c
  | For (init, cond, step, body) ->
      let acc = List.fold_left (fold_expr f) acc init in
      let acc = List.fold_left (fold_expr f) acc cond in
      let acc = List.fold_left (fold_expr f) acc step in
      fold_stmts_with_expr f acc body
  | Foreach (subject, binding, body) ->
      let acc = fold_expr f acc subject in
      let acc =
        match binding.fe_key with Some k -> fold_expr f acc k | None -> acc
      in
      let acc = fold_expr f acc binding.fe_value in
      fold_stmts_with_expr f acc body
  | Switch (subject, cases) ->
      let acc = fold_expr f acc subject in
      List.fold_left
        (fun acc -> function
          | Case (e, body) -> fold_stmts_with_expr f (fold_expr f acc e) body
          | Default body -> fold_stmts_with_expr f acc body)
        acc cases
  | Return (Some e) -> fold_expr f acc e
  | Return None | Break _ | Continue _ | Global _ | Inline_html _ | Nop -> acc
  | Static_vars vs ->
      List.fold_left
        (fun acc (_, init) ->
          match init with Some e -> fold_expr f acc e | None -> acc)
        acc vs
  | Try (body, catches, fin) ->
      let acc = fold_stmts_with_expr f acc body in
      let acc =
        List.fold_left (fun acc c -> fold_stmts_with_expr f acc c.c_body) acc catches
      in
      (match fin with Some body -> fold_stmts_with_expr f acc body | None -> acc)
  | Func_def fn -> fold_stmts_with_expr f acc fn.f_body
  | Class_def k ->
      let acc =
        List.fold_left (fun acc (_, e) -> fold_expr f acc e) acc k.k_consts
      in
      let acc =
        List.fold_left
          (fun acc pr ->
            match pr.pr_default with Some e -> fold_expr f acc e | None -> acc)
          acc k.k_props
      in
      List.fold_left (fun acc m -> fold_stmts_with_expr f acc m.m_func.f_body) acc k.k_methods
  | Block body -> fold_stmts_with_expr f acc body
  | Const_def cs -> List.fold_left (fun acc (_, e) -> fold_expr f acc e) acc cs

(** [iter_exprs f prog] applies [f] to every expression in the program. *)
let iter_exprs f prog = fold_stmts_with_expr (fun () e -> f e) () prog

(** [fold_expr_prune f acc e] is {!fold_expr} with pruning: [f] returns
    the new accumulator and whether to descend into the node's children.
    Clients walking a single scope use it to stop at closure boundaries
    or to treat lvalues specially. *)
let rec fold_expr_prune (f : 'a -> expr -> 'a * bool) (acc : 'a) (e : expr) : 'a =
  let acc, descend = f acc e in
  if not descend then acc
  else
    match e.e with
    | Int _ | Float _ | String _ | Var _ | Constant _ | Static_prop _ | Class_const _ ->
        acc
    | Interp parts | Backtick parts ->
        List.fold_left
          (fun acc -> function
            | Ip_str _ -> acc
            | Ip_expr e -> fold_expr_prune f acc e)
          acc parts
    | Var_var e1 | Clone e1 | Unop (_, e1) | Incdec (_, e1) | Cast (_, e1)
    | Empty e1 | Print e1 | Include (_, e1) ->
        fold_expr_prune f acc e1
    | Array_lit items ->
        List.fold_left
          (fun acc it ->
            let acc =
              match it.ai_key with Some k -> fold_expr_prune f acc k | None -> acc
            in
            fold_expr_prune f acc it.ai_value)
          acc items
    | Index (e1, idx) -> (
        let acc = fold_expr_prune f acc e1 in
        match idx with Some i -> fold_expr_prune f acc i | None -> acc)
    | Prop (e1, m) -> (
        let acc = fold_expr_prune f acc e1 in
        match m with Mem_expr e2 -> fold_expr_prune f acc e2 | Mem_ident _ -> acc)
    | Call (callee, args) ->
        let acc =
          match callee with
          | F_ident _ | F_static _ -> acc
          | F_var e1 -> fold_expr_prune f acc e1
          | F_method (e1, m) -> (
              let acc = fold_expr_prune f acc e1 in
              match m with
              | Mem_expr e2 -> fold_expr_prune f acc e2
              | Mem_ident _ -> acc)
        in
        List.fold_left (fun acc a -> fold_expr_prune f acc a.a_expr) acc args
    | New (_, args) ->
        List.fold_left (fun acc a -> fold_expr_prune f acc a.a_expr) acc args
    | Binop (_, l, r) | Assign (_, l, r) | Assign_ref (l, r) ->
        fold_expr_prune f (fold_expr_prune f acc l) r
    | Ternary (c, t, e2) -> (
        let acc = fold_expr_prune f acc c in
        let acc = match t with Some t -> fold_expr_prune f acc t | None -> acc in
        fold_expr_prune f acc e2)
    | Isset es -> List.fold_left (fold_expr_prune f) acc es
    | Exit e1 -> (
        match e1 with Some e1 -> fold_expr_prune f acc e1 | None -> acc)
    | List es ->
        List.fold_left
          (fun acc -> function Some e1 -> fold_expr_prune f acc e1 | None -> acc)
          acc es
    | Closure c ->
        List.fold_left
          (fun acc s -> fold_stmt_exprs_prune f acc s)
          acc c.cl_body

and fold_stmt_exprs_prune f acc (s : stmt) =
  let acc = List.fold_left (fold_expr_prune f) acc (stmt_exprs s) in
  List.fold_left (fold_stmt_exprs_prune f) acc (sub_stmts s)

(** [stmt_exprs s] is the expressions evaluated directly by [s] — its
    own expressions and the conditions of compound statements — without
    descending into nested statement bodies.  Function and class
    definitions evaluate nothing. *)
and stmt_exprs (s : stmt) : expr list =
  match s.s with
  | Expr_stmt e | Throw e | Return (Some e) -> [ e ]
  | Echo es | Unset es -> es
  | If (branches, _) -> List.map fst branches
  | While (c, _) | Do_while (_, c) -> [ c ]
  | For (init, conds, steps, _) -> init @ conds @ steps
  | Foreach (subject, binding, _) ->
      (subject :: Option.to_list binding.fe_key) @ [ binding.fe_value ]
  | Switch (subject, cases) ->
      subject
      :: List.filter_map
           (function Case (e, _) -> Some e | Default _ -> None)
           cases
  | Static_vars vs -> List.filter_map snd vs
  | Const_def cs -> List.map snd cs
  | Return None | Break _ | Continue _ | Global _ | Inline_html _ | Nop
  | Try _ | Func_def _ | Class_def _ | Block _ ->
      []

(** [sub_stmts s] is the immediate nested statements of [s]: branch and
    loop bodies, switch cases, try/catch/finally blocks.  Function and
    class bodies are {e not} included — they are separate scopes. *)
and sub_stmts (s : stmt) : stmt list =
  match s.s with
  | If (branches, els) ->
      List.concat_map snd branches
      @ (match els with Some b -> b | None -> [])
  | While (_, b) | Do_while (b, _) | For (_, _, _, b) | Foreach (_, _, b)
  | Block b ->
      b
  | Switch (_, cases) ->
      List.concat_map (function Case (_, b) | Default b -> b) cases
  | Try (b, catches, fin) ->
      b
      @ List.concat_map (fun c -> c.c_body) catches
      @ (match fin with Some b -> b | None -> [])
  | _ -> []

(** All calls to named functions in a program, with their locations.
    Method names appear lowercased, as ["name"]; static calls as
    ["class::name"]. *)
let named_calls prog : (string * arg list * Loc.t) list =
  List.rev
    (fold_stmts_with_expr
       (fun acc e ->
         match e.e with
         | Call (callee, args) -> (
             match callee_name callee with
             | Some name -> (name, args, e.eloc) :: acc
             | None -> acc)
         | _ -> acc)
       [] prog)

(** All top-level and nested user function definitions. *)
let rec collect_functions (stmts : stmt list) : func list =
  List.concat_map
    (fun s ->
      match s.s with
      | Func_def f -> f :: collect_functions f.f_body
      | Class_def k -> List.map (fun m -> m.m_func) k.k_methods
      | If (branches, els) ->
          List.concat_map (fun (_, b) -> collect_functions b) branches
          @ (match els with Some b -> collect_functions b | None -> [])
      | While (_, b) | Do_while (b, _) | For (_, _, _, b) | Foreach (_, _, b) | Block b ->
          collect_functions b
      | Switch (_, cases) ->
          List.concat_map
            (function Case (_, b) | Default b -> collect_functions b)
            cases
      | Try (b, catches, fin) ->
          collect_functions b
          @ List.concat_map (fun c -> collect_functions c.c_body) catches
          @ (match fin with Some b -> collect_functions b | None -> [])
      | _ -> [])
    stmts

(** Count of AST statement nodes, used as a cheap program-size proxy in
    benchmarks. *)
let stmt_count prog =
  let rec count_stmt (s : stmt) =
    1
    +
    match s.s with
    | If (branches, els) ->
        List.fold_left (fun n (_, b) -> n + count b) 0 branches
        + (match els with Some b -> count b | None -> 0)
    | While (_, b) | Do_while (b, _) | For (_, _, _, b) | Foreach (_, _, b) | Block b ->
        count b
    | Switch (_, cases) ->
        List.fold_left
          (fun n -> function Case (_, b) | Default b -> n + count b)
          0 cases
    | Try (b, catches, fin) ->
        count b
        + List.fold_left (fun n c -> n + count c.c_body) 0 catches
        + (match fin with Some b -> count b | None -> 0)
    | Func_def f -> count f.f_body
    | Class_def k -> List.fold_left (fun n m -> n + count m.m_func.f_body) 0 k.k_methods
    | _ -> 0
  and count stmts = List.fold_left (fun n s -> n + count_stmt s) 0 stmts in
  count prog

(* ------------------------------------------------------------------ *)
(* Bottom-up expression rewriting, used by the code corrector.          *)

(** [map_expr f e] rebuilds [e] bottom-up, applying [f] to every node
    after its children have been rewritten. *)
let rec map_expr (f : expr -> expr) (e : expr) : expr =
  let k e' = f { e with e = e' } in
  match e.e with
  | Int _ | Float _ | String _ | Var _ | Constant _ | Static_prop _ | Class_const _ ->
      f e
  | Interp parts ->
      k (Interp
           (List.map
              (function
                | Ip_str s -> Ip_str s
                | Ip_expr e1 -> Ip_expr (map_expr f e1))
              parts))
  | Backtick parts ->
      k (Backtick
           (List.map
              (function
                | Ip_str s -> Ip_str s
                | Ip_expr e1 -> Ip_expr (map_expr f e1))
              parts))
  | Var_var e1 -> k (Var_var (map_expr f e1))
  | Clone e1 -> k (Clone (map_expr f e1))
  | Unop (op, e1) -> k (Unop (op, map_expr f e1))
  | Incdec (op, e1) -> k (Incdec (op, map_expr f e1))
  | Cast (c, e1) -> k (Cast (c, map_expr f e1))
  | Empty e1 -> k (Empty (map_expr f e1))
  | Print e1 -> k (Print (map_expr f e1))
  | Include (ik, e1) -> k (Include (ik, map_expr f e1))
  | Array_lit items ->
      k (Array_lit
           (List.map
              (fun it ->
                { it with
                  ai_key = Option.map (map_expr f) it.ai_key;
                  ai_value = map_expr f it.ai_value })
              items))
  | Index (e1, idx) -> k (Index (map_expr f e1, Option.map (map_expr f) idx))
  | Prop (e1, m) -> k (Prop (map_expr f e1, map_member f m))
  | Call (callee, args) ->
      let callee =
        match callee with
        | F_ident _ | F_static _ -> callee
        | F_var e1 -> F_var (map_expr f e1)
        | F_method (e1, m) -> F_method (map_expr f e1, map_member f m)
      in
      k (Call (callee, List.map (fun a -> { a with a_expr = map_expr f a.a_expr }) args))
  | New (c, args) ->
      k (New (c, List.map (fun a -> { a with a_expr = map_expr f a.a_expr }) args))
  | Binop (op, l, r) -> k (Binop (op, map_expr f l, map_expr f r))
  | Assign (op, l, r) -> k (Assign (op, map_expr f l, map_expr f r))
  | Assign_ref (l, r) -> k (Assign_ref (map_expr f l, map_expr f r))
  | Ternary (c, t, e2) ->
      k (Ternary (map_expr f c, Option.map (map_expr f) t, map_expr f e2))
  | Isset es -> k (Isset (List.map (map_expr f) es))
  | Exit e1 -> k (Exit (Option.map (map_expr f) e1))
  | List es -> k (List (List.map (Option.map (map_expr f)) es))
  | Closure c -> k (Closure { c with cl_body = map_stmts f c.cl_body })

and map_member f = function
  | Mem_ident m -> Mem_ident m
  | Mem_expr e -> Mem_expr (map_expr f e)

(** [map_stmts f stmts] applies {!map_expr}[ f] to every expression in
    the statements, preserving statement structure. *)
and map_stmts (f : expr -> expr) (stmts : stmt list) : stmt list =
  List.map (map_stmt f) stmts

and map_stmt f (s : stmt) : stmt =
  let s' =
    match s.s with
    | Expr_stmt e -> Expr_stmt (map_expr f e)
    | Echo es -> Echo (List.map (map_expr f) es)
    | If (branches, els) ->
        If
          ( List.map (fun (c, b) -> (map_expr f c, map_stmts f b)) branches,
            Option.map (map_stmts f) els )
    | While (c, b) -> While (map_expr f c, map_stmts f b)
    | Do_while (b, c) -> Do_while (map_stmts f b, map_expr f c)
    | For (i, c, st, b) ->
        For
          ( List.map (map_expr f) i,
            List.map (map_expr f) c,
            List.map (map_expr f) st,
            map_stmts f b )
    | Foreach (subj, binding, b) ->
        Foreach
          ( map_expr f subj,
            { binding with
              fe_key = Option.map (map_expr f) binding.fe_key;
              fe_value = map_expr f binding.fe_value },
            map_stmts f b )
    | Switch (subj, cases) ->
        Switch
          ( map_expr f subj,
            List.map
              (function
                | Case (e, b) -> Case (map_expr f e, map_stmts f b)
                | Default b -> Default (map_stmts f b))
              cases )
    | Return e -> Return (Option.map (map_expr f) e)
    | Static_vars vs ->
        Static_vars (List.map (fun (v, e) -> (v, Option.map (map_expr f) e)) vs)
    | Unset es -> Unset (List.map (map_expr f) es)
    | Throw e -> Throw (map_expr f e)
    | Try (b, catches, fin) ->
        Try
          ( map_stmts f b,
            List.map (fun c -> { c with c_body = map_stmts f c.c_body }) catches,
            Option.map (map_stmts f) fin )
    | Func_def fn -> Func_def { fn with f_body = map_stmts f fn.f_body }
    | Class_def k ->
        Class_def
          { k with
            k_methods =
              List.map
                (fun m ->
                  { m with m_func = { m.m_func with f_body = map_stmts f m.m_func.f_body } })
                k.k_methods }
    | Block b -> Block (map_stmts f b)
    | (Break _ | Continue _ | Global _ | Inline_html _ | Nop | Const_def _) as same ->
        same
  in
  { s with s = s' }
