(** Generic traversals over the PHP AST.

    The detectors and the symptom collector both need to walk every
    expression and statement; these folds centralize the recursion so
    each client only writes the interesting cases. *)

(** [fold_expr f acc e] applies [f] to [e] and every sub-expression, in
    pre-order (including expressions inside closure bodies). *)
val fold_expr : ('a -> Ast.expr -> 'a) -> 'a -> Ast.expr -> 'a

(** [fold_stmts_with_expr f acc stmts] folds [f] over every expression
    reachable from [stmts], including nested functions and classes. *)
val fold_stmts_with_expr : ('a -> Ast.expr -> 'a) -> 'a -> Ast.stmt list -> 'a

val fold_stmt_with_expr : ('a -> Ast.expr -> 'a) -> 'a -> Ast.stmt -> 'a

(** [iter_exprs f prog] applies [f] to every expression in the program. *)
val iter_exprs : (Ast.expr -> unit) -> Ast.program -> unit

(** [fold_expr_prune f acc e] is {!fold_expr} with pruning: [f] returns
    the new accumulator and whether to descend into the node's children.
    Clients walking a single scope use it to stop at closure boundaries
    or to treat lvalues specially. *)
val fold_expr_prune : ('a -> Ast.expr -> 'a * bool) -> 'a -> Ast.expr -> 'a

(** [stmt_exprs s] is the expressions evaluated directly by [s] — its
    own expressions and the conditions of compound statements — without
    descending into nested statement bodies. *)
val stmt_exprs : Ast.stmt -> Ast.expr list

(** [sub_stmts s] is the immediate nested statements of [s]: branch and
    loop bodies, switch cases, try/catch/finally blocks.  Function and
    class bodies are {e not} included — they are separate scopes. *)
val sub_stmts : Ast.stmt -> Ast.stmt list

(** All calls to named functions in a program, with their arguments and
    locations.  Method names appear lowercased as ["name"]; static calls
    as ["class::name"]. *)
val named_calls : Ast.program -> (string * Ast.arg list * Loc.t) list

(** All top-level and nested user function definitions, including class
    methods. *)
val collect_functions : Ast.stmt list -> Ast.func list

(** Count of AST statement nodes, used as a cheap program-size proxy in
    benchmarks. *)
val stmt_count : Ast.program -> int

(** [map_expr f e] rebuilds [e] bottom-up, applying [f] to every node
    after its children have been rewritten. *)
val map_expr : (Ast.expr -> Ast.expr) -> Ast.expr -> Ast.expr

(** [map_stmts f stmts] applies {!map_expr}[ f] to every expression in
    the statements, preserving statement structure. *)
val map_stmts : (Ast.expr -> Ast.expr) -> Ast.stmt list -> Ast.stmt list

val map_stmt : (Ast.expr -> Ast.expr) -> Ast.stmt -> Ast.stmt
