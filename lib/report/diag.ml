type item = {
  file : string;
  line : int;
  col : int;
  severity : string;
  rule : string;
  message : string;
}

let render (d : item) =
  Printf.sprintf "%s:%d:%d: %s: %s [%s]" d.file d.line d.col d.severity
    d.message d.rule

let render_all items = String.concat "\n" (List.map render items)

let summary items =
  let count sev = List.length (List.filter (fun d -> d.severity = sev) items) in
  let errors = count "error"
  and warnings = count "warning"
  and infos = count "info" in
  let plural n word =
    Printf.sprintf "%d %s%s" n word (if n = 1 then "" else "s")
  in
  let parts =
    List.filter_map
      (fun (n, word) -> if n > 0 then Some (plural n word) else None)
      [ (errors, "error"); (warnings, "warning"); (infos, "info") ]
  in
  match parts with [] -> "no issues" | _ -> String.concat ", " parts

let to_json items =
  Json.List
    (List.map
       (fun d ->
         Json.Obj
           [
             ("file", Json.Str d.file);
             ("line", Json.Int d.line);
             ("col", Json.Int d.col);
             ("severity", Json.Str d.severity);
             ("rule", Json.Str d.rule);
             ("message", Json.Str d.message);
           ])
       items)
