(** Rendering of analysis diagnostics (lint findings, engine warnings).

    Kept independent of the PHP front end on purpose: items carry plain
    positions, so any producer — the linter today, future weapons
    tomorrow — can render through the same section. *)

type item = {
  file : string;
  line : int;
  col : int;
  severity : string;  (** ["error"] / ["warning"] / ["info"] *)
  rule : string;  (** producing rule's identifier *)
  message : string;
}

(** One diagnostic, compiler-style:
    [file:line:col: severity: message [rule]]. *)
val render : item -> string

(** All diagnostics, one per line, in the given order. *)
val render_all : item list -> string

(** A one-line tally, e.g. ["2 errors, 3 warnings"]; ["no issues"] when
    empty. *)
val summary : item list -> string

(** JSON export: a list of objects with [file]/[line]/[col]/[severity]/
    [rule]/[message] fields. *)
val to_json : item list -> Json.t
