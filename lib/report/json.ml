(** A minimal JSON emitter (no external dependency), used to export
    findings and experiment data for downstream tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let rec write ~indent buf (v : t) (level : int) =
  let pad n = if indent then String.make (2 * n) ' ' else "" in
  let nl = if indent then "\n" else "" in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf ("[" ^ nl);
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ("," ^ nl);
          Buffer.add_string buf (pad (level + 1));
          write ~indent buf item (level + 1))
        items;
      Buffer.add_string buf (nl ^ pad level ^ "]")
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf ("{" ^ nl);
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ("," ^ nl);
          Buffer.add_string buf (pad (level + 1));
          Buffer.add_string buf ("\"" ^ escape_string k ^ "\":");
          if indent then Buffer.add_char buf ' ';
          write ~indent buf v (level + 1))
        fields;
      Buffer.add_string buf (nl ^ pad level ^ "}")

(** Serialize; [indent] pretty-prints with two-space indentation. *)
let to_string ?(indent = true) (v : t) : string =
  let buf = Buffer.create 256 in
  write ~indent buf v 0;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing.  A recursive-descent reader for the documents this emitter
   (and the trace writer) produces — full RFC 8259 value syntax, with
   \uXXXX escapes decoded to UTF-8.                                    *)

exception Parse_error of string * int  (** message, byte offset *)

type parser_state = { src : string; mutable pos : int }

let p_error p msg = raise (Parse_error (msg, p.pos))

let p_peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let p_next p =
  match p_peek p with
  | Some c ->
      p.pos <- p.pos + 1;
      c
  | None -> p_error p "unexpected end of input"

let rec p_skip_ws p =
  match p_peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      p.pos <- p.pos + 1;
      p_skip_ws p
  | _ -> ()

let p_expect p c =
  let got = p_next p in
  if got <> c then p_error p (Printf.sprintf "expected %C, got %C" c got)

let p_literal p lit v =
  String.iter (fun c -> p_expect p c) lit;
  v

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let p_string p =
  p_expect p '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match p_next p with
    | '"' -> Buffer.contents b
    | '\\' ->
        (match p_next p with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            let hex = Bytes.create 4 in
            for i = 0 to 3 do
              Bytes.set hex i (p_next p)
            done;
            (match int_of_string_opt ("0x" ^ Bytes.to_string hex) with
            | Some code -> add_utf8 b code
            | None -> p_error p "bad \\u escape")
        | c -> p_error p (Printf.sprintf "bad escape \\%C" c));
        loop ()
    | c when Char.code c < 32 -> p_error p "raw control character in string"
    | c ->
        Buffer.add_char b c;
        loop ()
  in
  loop ()

let p_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match p_peek p with Some c -> is_num_char c | None -> false) do
    p.pos <- p.pos + 1
  done;
  let text = String.sub p.src start (p.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> p_error p "malformed number"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
        (* integer overflowing 63 bits still parses as a float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> p_error p "malformed number")

let rec p_value p : t =
  p_skip_ws p;
  match p_peek p with
  | Some '"' -> Str (p_string p)
  | Some '{' ->
      p.pos <- p.pos + 1;
      p_skip_ws p;
      if p_peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else
        let rec fields acc =
          p_skip_ws p;
          let k = p_string p in
          p_skip_ws p;
          p_expect p ':';
          let v = p_value p in
          p_skip_ws p;
          match p_next p with
          | ',' -> fields ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | c -> p_error p (Printf.sprintf "expected ',' or '}', got %C" c)
        in
        fields []
  | Some '[' ->
      p.pos <- p.pos + 1;
      p_skip_ws p;
      if p_peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else
        let rec items acc =
          let v = p_value p in
          p_skip_ws p;
          match p_next p with
          | ',' -> items (v :: acc)
          | ']' -> List (List.rev (v :: acc))
          | c -> p_error p (Printf.sprintf "expected ',' or ']', got %C" c)
        in
        items []
  | Some 't' -> p_literal p "true" (Bool true)
  | Some 'f' -> p_literal p "false" (Bool false)
  | Some 'n' -> p_literal p "null" Null
  | Some ('-' | '0' .. '9') -> p_number p
  | Some c -> p_error p (Printf.sprintf "unexpected %C" c)
  | None -> p_error p "unexpected end of input"

let of_string (s : string) : (t, string) result =
  let p = { src = s; pos = 0 } in
  match
    let v = p_value p in
    p_skip_ws p;
    if p.pos <> String.length s then p_error p "trailing input after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, pos) ->
      Error (Printf.sprintf "%s at offset %d" msg pos)

(* Accessors for tests and downstream consumers. *)
let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
