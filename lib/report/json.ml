(** A minimal JSON emitter (no external dependency), used to export
    findings and experiment data for downstream tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* ASCII-only escaping: non-ASCII bytes are decoded as UTF-8 and written
   as \uXXXX escapes, astral-plane code points as UTF-16 surrogate
   pairs.  Malformed UTF-8 degrades to U+FFFD per offending byte so the
   output is always valid JSON. *)
let escape_string_ascii s =
  let b = Buffer.create (String.length s + 2) in
  let emit_u code =
    if code < 0x10000 then Buffer.add_string b (Printf.sprintf "\\u%04x" code)
    else begin
      let u = code - 0x10000 in
      Buffer.add_string b (Printf.sprintf "\\u%04x" (0xD800 lor (u lsr 10)));
      Buffer.add_string b (Printf.sprintf "\\u%04x" (0xDC00 lor (u land 0x3FF)))
    end
  in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    (match c with
    | '"' -> Buffer.add_string b "\\\""
    | '\\' -> Buffer.add_string b "\\\\"
    | '\n' -> Buffer.add_string b "\\n"
    | '\r' -> Buffer.add_string b "\\r"
    | '\t' -> Buffer.add_string b "\\t"
    | c when Char.code c < 32 -> emit_u (Char.code c)
    | c when Char.code c < 0x80 -> Buffer.add_char b c
    | c ->
        (* multi-byte UTF-8 sequence *)
        let c0 = Char.code c in
        let len, min_code =
          if c0 land 0xE0 = 0xC0 then (2, 0x80)
          else if c0 land 0xF0 = 0xE0 then (3, 0x800)
          else if c0 land 0xF8 = 0xF0 then (4, 0x10000)
          else (0, 0)
        in
        let cont j =
          !i + j < n && Char.code s.[!i + j] land 0xC0 = 0x80
        in
        let ok = len > 0 && (len < 2 || cont 1) && (len < 3 || cont 2)
                 && (len < 4 || cont 3)
        in
        if not ok then emit_u 0xFFFD
        else begin
          let code = ref (c0 land (0xFF lsr (len + 1))) in
          for j = 1 to len - 1 do
            code := (!code lsl 6) lor (Char.code s.[!i + j] land 0x3F)
          done;
          (* reject overlong forms, encoded surrogates, out-of-range *)
          if !code < min_code || (!code >= 0xD800 && !code <= 0xDFFF)
             || !code > 0x10FFFF
          then emit_u 0xFFFD
          else begin
            emit_u !code;
            i := !i + len - 1
          end
        end);
    incr i
  done;
  Buffer.contents b

let rec write ~escape ~indent buf (v : t) (level : int) =
  let pad n = if indent then String.make (2 * n) ' ' else "" in
  let nl = if indent then "\n" else "" in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf ("[" ^ nl);
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ("," ^ nl);
          Buffer.add_string buf (pad (level + 1));
          write ~escape ~indent buf item (level + 1))
        items;
      Buffer.add_string buf (nl ^ pad level ^ "]")
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf ("{" ^ nl);
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ("," ^ nl);
          Buffer.add_string buf (pad (level + 1));
          Buffer.add_string buf ("\"" ^ escape k ^ "\":");
          if indent then Buffer.add_char buf ' ';
          write ~escape ~indent buf v (level + 1))
        fields;
      Buffer.add_string buf (nl ^ pad level ^ "}")

(** Serialize; [indent] pretty-prints with two-space indentation. *)
let to_string ?(indent = true) (v : t) : string =
  let buf = Buffer.create 256 in
  write ~escape:escape_string ~indent buf v 0;
  Buffer.contents buf

(** Serialize to 7-bit ASCII: non-ASCII text becomes [\uXXXX] escapes
    (surrogate pairs above U+FFFF). *)
let to_string_ascii ?(indent = true) (v : t) : string =
  let buf = Buffer.create 256 in
  write ~escape:escape_string_ascii ~indent buf v 0;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing.  A recursive-descent reader for the documents this emitter
   (and the trace writer) produces — full RFC 8259 value syntax, with
   \uXXXX escapes decoded to UTF-8.                                    *)

exception Parse_error of string * int  (** message, byte offset *)

type parser_state = { src : string; mutable pos : int }

let p_error p msg = raise (Parse_error (msg, p.pos))

let p_peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let p_next p =
  match p_peek p with
  | Some c ->
      p.pos <- p.pos + 1;
      c
  | None -> p_error p "unexpected end of input"

let rec p_skip_ws p =
  match p_peek p with
  | Some (' ' | '\t' | '\n' | '\r') ->
      p.pos <- p.pos + 1;
      p_skip_ws p
  | _ -> ()

let p_expect p c =
  let got = p_next p in
  if got <> c then p_error p (Printf.sprintf "expected %C, got %C" c got)

let p_literal p lit v =
  String.iter (fun c -> p_expect p c) lit;
  v

let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let p_string p =
  p_expect p '"';
  let b = Buffer.create 16 in
  let rec loop () =
    match p_next p with
    | '"' -> Buffer.contents b
    | '\\' ->
        (match p_next p with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
            let read4 () =
              let hex = Bytes.create 4 in
              for i = 0 to 3 do
                Bytes.set hex i (p_next p)
              done;
              match int_of_string_opt ("0x" ^ Bytes.to_string hex) with
              | Some code -> code
              | None -> p_error p "bad \\u escape"
            in
            let code = read4 () in
            if code >= 0xD800 && code <= 0xDBFF then begin
              (* high surrogate: must combine with a following low
                 surrogate into one astral-plane code point — emitting
                 the two halves separately would be CESU-8, not UTF-8 *)
              (match p_next p with
              | '\\' -> ()
              | _ -> p_error p "lone high surrogate (expected \\uDC00-\\uDFFF)");
              (match p_next p with
              | 'u' -> ()
              | _ -> p_error p "lone high surrogate (expected \\uDC00-\\uDFFF)");
              let low = read4 () in
              if low < 0xDC00 || low > 0xDFFF then
                p_error p "lone high surrogate (expected \\uDC00-\\uDFFF)";
              add_utf8 b
                (0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00))
            end
            else if code >= 0xDC00 && code <= 0xDFFF then
              p_error p "lone low surrogate"
            else add_utf8 b code
        | c -> p_error p (Printf.sprintf "bad escape \\%C" c));
        loop ()
    | c when Char.code c < 32 -> p_error p "raw control character in string"
    | c ->
        Buffer.add_char b c;
        loop ()
  in
  loop ()

let p_number p =
  let start = p.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match p_peek p with Some c -> is_num_char c | None -> false) do
    p.pos <- p.pos + 1
  done;
  let text = String.sub p.src start (p.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> p_error p "malformed number"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
        (* integer overflowing 63 bits still parses as a float *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> p_error p "malformed number")

let rec p_value p : t =
  p_skip_ws p;
  match p_peek p with
  | Some '"' -> Str (p_string p)
  | Some '{' ->
      p.pos <- p.pos + 1;
      p_skip_ws p;
      if p_peek p = Some '}' then begin
        p.pos <- p.pos + 1;
        Obj []
      end
      else
        let rec fields acc =
          p_skip_ws p;
          let k = p_string p in
          p_skip_ws p;
          p_expect p ':';
          let v = p_value p in
          p_skip_ws p;
          match p_next p with
          | ',' -> fields ((k, v) :: acc)
          | '}' -> Obj (List.rev ((k, v) :: acc))
          | c -> p_error p (Printf.sprintf "expected ',' or '}', got %C" c)
        in
        fields []
  | Some '[' ->
      p.pos <- p.pos + 1;
      p_skip_ws p;
      if p_peek p = Some ']' then begin
        p.pos <- p.pos + 1;
        List []
      end
      else
        let rec items acc =
          let v = p_value p in
          p_skip_ws p;
          match p_next p with
          | ',' -> items (v :: acc)
          | ']' -> List (List.rev (v :: acc))
          | c -> p_error p (Printf.sprintf "expected ',' or ']', got %C" c)
        in
        items []
  | Some 't' -> p_literal p "true" (Bool true)
  | Some 'f' -> p_literal p "false" (Bool false)
  | Some 'n' -> p_literal p "null" Null
  | Some ('-' | '0' .. '9') -> p_number p
  | Some c -> p_error p (Printf.sprintf "unexpected %C" c)
  | None -> p_error p "unexpected end of input"

let of_string (s : string) : (t, string) result =
  let p = { src = s; pos = 0 } in
  match
    let v = p_value p in
    p_skip_ws p;
    if p.pos <> String.length s then p_error p "trailing input after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (msg, pos) ->
      Error (Printf.sprintf "%s at offset %d" msg pos)

(* Accessors for tests and downstream consumers. *)
let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list_opt = function List xs -> Some xs | _ -> None
