(** A minimal JSON emitter (no external dependency), used to export
    findings and experiment data for downstream tooling. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Serialize; [indent] (default true) pretty-prints with two-space
    indentation.  Strings are escaped per RFC 8259; non-ASCII bytes pass
    through verbatim (the exporters emit UTF-8). *)
val to_string : ?indent:bool -> t -> string

(** Like {!to_string}, but the output is 7-bit ASCII: string contents
    are decoded as UTF-8 and every non-ASCII code point is written as a
    [\uXXXX] escape (a UTF-16 surrogate pair above U+FFFF, per
    RFC 8259 §7).  Malformed UTF-8 degrades to U+FFFD.  Safe for
    consumers with broken charset handling;
    [of_string (to_string_ascii v)] round-trips to [of_string
    (to_string v)]. *)
val to_string_ascii : ?indent:bool -> t -> string

(** Parse a complete JSON document (full RFC 8259 value syntax; [\uXXXX]
    escapes are decoded to UTF-8, surrogate pairs combined into one code
    point; lone surrogates are rejected).  Used by the tests to check
    that exported documents — including [--trace-out] Chrome traces —
    are well-formed, and handy for downstream consumers. *)
val of_string : string -> (t, string) result

(** [member k (Obj ...)] is the value under key [k], if any; [None] on
    non-objects. *)
val member : string -> t -> t option

(** The payload of a [List], [None] otherwise. *)
val to_list_opt : t -> t list option
