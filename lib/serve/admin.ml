(** The daemon's admin plane: [/metrics], [/healthz], [/readyz],
    [/status], [/trace] over {!Http}, served from a dedicated domain so
    a scrape never waits on LSP traffic. *)

module Json = Wap_report.Json
module Metrics = Wap_obs.Metrics
module Trace = Wap_obs.Trace
module Expo = Wap_obs.Expo
module Log = Wap_obs.Log

type source = {
  ready : unit -> bool;
  status : unit -> Json.t;
  registry : Metrics.registry;
  tracer : unit -> Trace.t option;
}

type response = { code : int; content_type : string; body : string }

let text code body = { code; content_type = "text/plain; charset=utf-8"; body }

(* Routing is a pure function of (source, path) so the tests can hit
   every endpoint in-process, without sockets. *)
let handle_path (src : source) (path : string) : response =
  match path with
  | "/healthz" -> text 200 "ok\n"
  | "/readyz" ->
      if src.ready () then text 200 "ready\n" else text 503 "no session open\n"
  | "/metrics" ->
      {
        code = 200;
        content_type = "text/plain; version=0.0.4; charset=utf-8";
        body = Expo.prometheus src.registry;
      }
  | "/status" ->
      {
        code = 200;
        content_type = "application/json";
        body = Json.to_string ~indent:true (src.status ()) ^ "\n";
      }
  | "/trace" ->
      (* Drain: each poll serves only the window since the last one, so
         a dashboard polling [/trace] sees a live stream and ring memory
         is reclaimed.  Without a ring tracer the document is a valid,
         empty trace. *)
      let events =
        match src.tracer () with Some t -> Trace.drain t | None -> []
      in
      {
        code = 200;
        content_type = "application/json";
        body = Trace.events_to_chrome_json events;
      }
  | _ -> text 404 "not found\n"

let serve_client (src : source) fd =
  let ic = Unix.in_channel_of_descr fd in
  (match Http.read_request ic with
  | None -> ()
  | Some (Error e) -> Http.write_response fd ~code:400 ~content_type:"text/plain" (e ^ "\n")
  | Some (Ok rq) ->
      if rq.Http.rq_meth <> "GET" then
        Http.write_response fd ~code:405 ~content_type:"text/plain"
          "admin endpoints are GET-only\n"
      else begin
        let r = handle_path src (Http.strip_query rq.Http.rq_path) in
        Http.write_response fd ~code:r.code ~content_type:r.content_type r.body
      end);
  try Unix.close fd with _ -> ()

let accept_loop (src : source) sock =
  let rec loop () =
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception _ -> ()  (* socket closed: stop *)
    | fd, _ ->
        (try serve_client src fd
         with e ->
           Log.debug
             ~fields:[ ("error", Printexc.to_string e) ]
             "admin client error");
        loop ()
  in
  loop ()

let listen_tcp ~port =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 16;
  sock

let listen_unix ~path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 16;
  sock

(* The admin domain spends its life blocked in [accept]; it is never
   joined — when the serving domain exits the process, the runtime
   tears it down.  The admin plane only reads (word-sized mirror
   fields, metric cells, the trace ring), so there is nothing to flush
   on the way out. *)
let spawn (src : source) sock : unit =
  ignore
    (Domain.spawn (fun () ->
         try accept_loop src sock
         with e ->
           Log.error
             ~fields:[ ("error", Printexc.to_string e) ]
             "admin listener died"))
