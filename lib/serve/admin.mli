(** The daemon's admin plane.

    A tiny HTTP/1.1 listener ([--admin-port]/[--admin-socket]) served
    from its own domain, so scrapes never contend with LSP traffic:

    - [GET /metrics] — the metrics registry in Prometheus text format
      ({!Wap_obs.Expo.prometheus});
    - [GET /healthz] — liveness: [200 ok] whenever the process can
      answer at all;
    - [GET /readyz] — readiness: [200] once a session is open (the
      first [didOpen] arrived), [503] before;
    - [GET /status] — one JSON document of operational facts (uptime,
      generation, open documents, session file/candidate counts, cache
      hit ratio, stale events, RSS);
    - [GET /trace] — {e drains} the bounded trace ring as Chrome
      trace-event JSON: each poll returns the window since the last.

    The admin plane is read-only by construction: it never mutates the
    session or the documents, so scan results cannot depend on whether
    anyone is scraping. *)

type source = {
  ready : unit -> bool;  (** [/readyz] predicate *)
  status : unit -> Wap_report.Json.t;  (** [/status] document *)
  registry : Wap_obs.Metrics.registry;  (** scraped by [/metrics] *)
  tracer : unit -> Wap_obs.Trace.t option;  (** drained by [/trace] *)
}

type response = { code : int; content_type : string; body : string }

(** Route one (query-stripped) path — pure, so tests can hit every
    endpoint without a socket.  Unknown paths get [404]. *)
val handle_path : source -> string -> response

(** Bound + listening admin sockets (loopback TCP / Unix domain). *)
val listen_tcp : port:int -> Unix.file_descr

val listen_unix : path:string -> Unix.file_descr

(** Serve requests on an accepted-socket loop until the socket errors
    (i.e. is closed); one request per connection. *)
val accept_loop : source -> Unix.file_descr -> unit

(** {!accept_loop} in a fresh background domain.  The domain is never
    joined: it blocks in [accept] until process exit tears it down,
    which is safe because the admin plane only reads. *)
val spawn : source -> Unix.file_descr -> unit
