(** Minimal HTTP/1.1 for the admin plane: enough to serve a scraper
    and [curl], nothing more.  One request per connection
    ([Connection: close]); bodies are never read (the admin surface is
    GET-only). *)

type request = {
  rq_meth : string;
  rq_path : string;  (** as sent, query string included *)
  rq_headers : (string * string) list;  (** names lowercased *)
}

(* A path like /metrics?x=1 → /metrics. *)
let strip_query (path : string) : string =
  match String.index_opt path '?' with
  | Some i -> String.sub path 0 i
  | None -> path

let read_line_crlf ic =
  match input_line ic with
  | exception End_of_file -> None
  | line ->
      let n = String.length line in
      if n > 0 && line.[n - 1] = '\r' then Some (String.sub line 0 (n - 1))
      else Some line

(* Cap header count so a misbehaving client can't grow memory. *)
let max_headers = 100

let read_request (ic : in_channel) : (request, string) result option =
  match read_line_crlf ic with
  | None -> None
  | Some request_line -> (
      match String.split_on_char ' ' request_line with
      | [ meth; path; version ]
        when version = "HTTP/1.1" || version = "HTTP/1.0" ->
          let rec headers acc n =
            if n > max_headers then Error "too many headers"
            else
              match read_line_crlf ic with
              | None -> Error "eof in headers"
              | Some "" -> Ok (List.rev acc)
              | Some line -> (
                  match String.index_opt line ':' with
                  | None -> Error (Printf.sprintf "malformed header %S" line)
                  | Some i ->
                      let k =
                        String.lowercase_ascii (String.sub line 0 i)
                      in
                      let v =
                        String.trim
                          (String.sub line (i + 1) (String.length line - i - 1))
                      in
                      headers ((k, v) :: acc) (n + 1))
          in
          Some
            (Result.map
               (fun hs ->
                 { rq_meth = meth; rq_path = path; rq_headers = hs })
               (headers [] 0))
      | _ -> Some (Error (Printf.sprintf "malformed request line %S" request_line)))

let reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

(* Unbuffered full write: [Unix.write] on a socket may return short
   (send buffer full under a slow or loaded scraper) and may be
   interrupted; loop until every byte of a large [/metrics] or [/trace]
   body is out instead of silently truncating the response. *)
let write_all (fd : Unix.file_descr) (s : string) : unit =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    match Unix.write_substring fd s !off (n - !off) with
    | 0 -> raise (Unix.Unix_error (Unix.EPIPE, "write", ""))
    | written -> off := !off + written
    | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ()
  done

let write_response (fd : Unix.file_descr) ~code ~content_type (body : string) :
    unit =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n"
      code (reason code) content_type (String.length body)
  in
  (* one buffer, one write loop: header and body cannot interleave with
     a concurrent log write's output, and small responses go out in a
     single syscall *)
  write_all fd (head ^ body)
