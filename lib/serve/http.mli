(** Minimal HTTP/1.1 reader/writer for the admin plane.

    Deliberately tiny: request line + headers in, status line + body
    out, one request per connection ([Connection: close]).  The admin
    surface is GET-only, so request bodies are never read. *)

type request = {
  rq_meth : string;
  rq_path : string;  (** as sent, query string included *)
  rq_headers : (string * string) list;  (** names lowercased *)
}

(** [rq_path] without its query string. *)
val strip_query : string -> string

(** Read one request head.  [None] at end of input before a request
    line; [Some (Error _)] on a malformed request line or headers. *)
val read_request : in_channel -> (request, string) result option

(** Write a complete response ([Content-Length] + [Connection: close])
    and flush. *)
val write_response :
  out_channel -> code:int -> content_type:string -> string -> unit
