(** Minimal HTTP/1.1 reader/writer for the admin plane.

    Deliberately tiny: request line + headers in, status line + body
    out, one request per connection ([Connection: close]).  The admin
    surface is GET-only, so request bodies are never read. *)

type request = {
  rq_meth : string;
  rq_path : string;  (** as sent, query string included *)
  rq_headers : (string * string) list;  (** names lowercased *)
}

(** [rq_path] without its query string. *)
val strip_query : string -> string

(** Read one request head.  [None] at end of input before a request
    line; [Some (Error _)] on a malformed request line or headers. *)
val read_request : in_channel -> (request, string) result option

(** Write [s] to [fd] in full, looping on short writes and [EINTR]/
    [EAGAIN] (a zero-byte write raises [EPIPE]): large bodies over a
    slow connection are never silently truncated. *)
val write_all : Unix.file_descr -> string -> unit

(** Write a complete response ([Content-Length] + [Connection: close])
    directly to the connection's descriptor via {!write_all}. *)
val write_response :
  Unix.file_descr -> code:int -> content_type:string -> string -> unit
