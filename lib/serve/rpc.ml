(** JSON-RPC 2.0 message transport with LSP base-protocol framing:
    each message is a [Content-Length: N] header block followed by a
    blank line and N bytes of JSON.  Values are {!Wap_report.Json}
    trees — the same minimal JSON the exporters use, so the server
    adds no dependency. *)

module Json = Wap_report.Json

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

(* Returns [None] at a clean end of stream (EOF before any header
   byte); a framing or JSON error inside a message is an [Error] so
   the caller can log it and keep the connection alive. *)
let read_message (ic : in_channel) : (Json.t, string) result option =
  match input_line ic with
  | exception End_of_file -> None
  | first -> (
      let rec headers len line =
        let line = strip_cr line in
        if line = "" then Ok len
        else
          let len =
            match String.index_opt line ':' with
            | Some i
              when String.lowercase_ascii (String.sub line 0 i)
                   = "content-length" -> (
                let v =
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1))
                in
                match int_of_string_opt v with
                | Some n when n >= 0 -> Some n
                | _ -> len)
            | _ -> len
          in
          match input_line ic with
          | exception End_of_file -> Error "end of input inside headers"
          | next -> headers len next
      in
      match headers None first with
      | Error e -> Some (Error e)
      | Ok None -> Some (Error "missing Content-Length header")
      | Ok (Some n) -> (
          match really_input_string ic n with
          | exception End_of_file ->
              Some (Error "end of input inside message body")
          | body -> Some (Json.of_string body)))

let write_message (oc : out_channel) (msg : Json.t) : unit =
  let body = Json.to_string ~indent:false msg in
  Printf.fprintf oc "Content-Length: %d\r\n\r\n%s" (String.length body) body;
  flush oc

(* ------------------------------------------------------------------ *)
(* Envelopes.                                                          *)

let response ~id result =
  Json.Obj [ ("jsonrpc", Json.Str "2.0"); ("id", id); ("result", result) ]

let error_response ~id ~code message =
  Json.Obj
    [
      ("jsonrpc", Json.Str "2.0");
      ("id", id);
      ( "error",
        Json.Obj [ ("code", Json.Int code); ("message", Json.Str message) ] );
    ]

let notification meth params =
  Json.Obj
    [ ("jsonrpc", Json.Str "2.0"); ("method", Json.Str meth); ("params", params) ]

(* ------------------------------------------------------------------ *)
(* Accessors.                                                          *)

let str_member k j =
  match Json.member k j with Some (Json.Str s) -> Some s | _ -> None

let int_member k j =
  match Json.member k j with
  | Some (Json.Int n) -> Some n
  | Some (Json.Float f) -> Some (int_of_float f)
  | _ -> None

let meth j = str_member "method" j
let id j = Json.member "id" j
let params j = Option.value (Json.member "params" j) ~default:Json.Null
