(** JSON-RPC 2.0 transport with LSP base-protocol framing
    ([Content-Length] header + JSON body) over ordinary channels. *)

module Json = Wap_report.Json

(** Read one framed message.  [None] at a clean end of stream;
    [Some (Error _)] on a framing or JSON syntax error (the stream
    stays usable — the next header line is resynchronized by the
    caller reading on). *)
val read_message : in_channel -> (Json.t, string) result option

(** Write one framed message and flush. *)
val write_message : out_channel -> Json.t -> unit

(** [response ~id result] — a successful JSON-RPC response. *)
val response : id:Json.t -> Json.t -> Json.t

(** [error_response ~id ~code msg] — a JSON-RPC error response
    (e.g. [-32601] method-not-found). *)
val error_response : id:Json.t -> code:int -> string -> Json.t

(** [notification meth params] — a JSON-RPC notification. *)
val notification : string -> Json.t -> Json.t

(** [Some s] when member [k] is a string. *)
val str_member : string -> Json.t -> string option

(** [Some n] when member [k] is a number (floats truncate). *)
val int_member : string -> Json.t -> int option

(** The ["method"] member, if any. *)
val meth : Json.t -> string option

(** The ["id"] member, if any — distinguishes requests from
    notifications. *)
val id : Json.t -> Json.t option

(** The ["params"] member, [Null] when absent. *)
val params : Json.t -> Json.t
