(** The [wap serve] LSP diagnostics daemon.

    A thin language-server shell around {!Wap_engine.Session}: the set
    of open editor documents {e is} the project.  The first [didOpen]
    opens a session; further opens/changes/closes map to
    {!Session.add_file}/{!Session.update_file}/{!Session.remove_file},
    so an edit re-analyzes only the touched file (and its include
    dependents) while diagnostics for every open document stay
    consistent.  Diagnostics are published per document and only when
    they changed since the last publish; findings the false-positive
    predictor flags are demoted to warnings.  [codeAction] offers the
    fixer's templates (the class's stock fix, user sanitization, user
    validation) as whole-document workspace edits.

    {!handle} is a pure-ish message-in/messages-out step so tests can
    drive the protocol in-process; {!serve_channels} and the
    stdio/socket/TCP runners wrap it in a read loop. *)

module Json = Wap_report.Json
module Session = Wap_engine.Session
module Trace = Wap_taint.Trace
module Tool = Wap_core.Tool
module Log = Wap_obs.Log
module Metrics = Wap_obs.Metrics
module Span = Wap_obs.Trace

type t = {
  tool : Tool.t;
  jobs : int;
  slow_s : float;
      (** requests slower than this (seconds) log a warning; [infinity]
          disables *)
  start_time : float;
  mutable session : Session.t option;  (** created at the first [didOpen] *)
  docs : (string, string) Hashtbl.t;  (** open documents: uri -> path *)
  uris : (string, string) Hashtbl.t;  (** inverse: path -> uri *)
  texts : (string, string) Hashtbl.t;  (** path -> current text *)
  published : (string, string) Hashtbl.t;
      (** uri -> serialized diagnostics last pushed, to skip no-op
          publishes *)
  mutable events_seen : int;
  mutable stale_events : int;
      (** session progress events tagged with a superseded generation
          (see {!Session.event}) — counted and dropped *)
  mutable shutdown_requested : bool;
  mutable finished : bool;
  mutable next_rid : int;  (** request ids, for the ambient log context *)
  (* Monitoring mirrors: written only by the serving domain (after each
     message), read by the admin domain.  All word-sized, so the
     cross-domain reads are tear-free; the admin plane never touches
     the session itself. *)
  mutable m_requests : int;
  mutable m_errors : int;
  mutable m_ready : bool;
  mutable m_open_docs : int;
  mutable m_generation : int;
  mutable m_files : int;
  mutable m_candidates : int;
  mutable m_cache_hits : int;
  mutable m_cache_misses : int;
  mutable m_last_reanalyzed : int;
      (** files the most recent document mutation re-analyzed *)
}

let create ?jobs ?slow_ms (tool : Tool.t) : t =
  (* registered (at zero) up front so a scrape before the first request
     already sees the serve families *)
  Metrics.set (Metrics.gauge "serve.open_documents") 0.;
  ignore (Metrics.counter "serve.connections");
  ignore (Metrics.counter "serve.rejected_frames");
  {
    tool;
    jobs = Wap_engine.Config.jobs jobs;
    slow_s =
      (match slow_ms with Some ms when ms > 0. -> ms /. 1000. | _ -> infinity);
    start_time = Unix.gettimeofday ();
    session = None;
    docs = Hashtbl.create 16;
    uris = Hashtbl.create 16;
    texts = Hashtbl.create 16;
    published = Hashtbl.create 16;
    events_seen = 0;
    stale_events = 0;
    shutdown_requested = false;
    finished = false;
    next_rid = 0;
    m_requests = 0;
    m_errors = 0;
    m_ready = false;
    m_open_docs = 0;
    m_generation = 0;
    m_files = 0;
    m_candidates = 0;
    m_cache_hits = 0;
    m_cache_misses = 0;
    m_last_reanalyzed = 0;
  }

let finished t = t.finished

(* ------------------------------------------------------------------ *)
(* URIs.  Editors send file:// URIs with percent-encoding; the session
   keys files by plain path.  Both mappings are kept so diagnostics go
   back out under the exact URI the client opened. *)

let percent_decode (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some h, Some l ->
            Buffer.add_char buf (Char.chr ((h * 16) + l));
            go (i + 3)
        | _ ->
            Buffer.add_char buf s.[i];
            go (i + 1)
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let path_of_uri (uri : string) : string =
  let uri = percent_decode uri in
  let prefix = "file://" in
  let pn = String.length prefix in
  if String.length uri >= pn && String.sub uri 0 pn = prefix then
    String.sub uri pn (String.length uri - pn)
  else uri

(* ------------------------------------------------------------------ *)
(* Session plumbing.                                                   *)

let on_event t (current_generation : unit -> int) (ev : Session.event) =
  t.events_seen <- t.events_seen + 1;
  if ev.Session.generation < current_generation () then
    (* A notification from a superseded edit: discard (the generation
       counter exists exactly for this). *)
    t.stale_events <- t.stale_events + 1
  else if Log.enabled Log.Debug then
    Log.debug
      ~fields:[ ("generation", string_of_int ev.Session.generation) ]
      "session progress"

(* Route the document into the session, creating it on first use.
   Returns the paths whose analysis re-ran (informational). *)
let upsert t ~path text : string list =
  Hashtbl.replace t.texts path text;
  Span.with_span ~cat:"serve" ~args:[ ("path", path) ] "session.upsert"
    (fun () ->
      match t.session with
      | Some s ->
          if Session.mem s ~path then Session.update_file s ~path text
          else Session.add_file s ~path text
      | None ->
          let session () =
            match t.session with Some s -> Session.generation s | None -> 0
          in
          let req =
            Session.request ~jobs:t.jobs
              ~fingerprint:(Tool.Scan.fingerprint t.tool)
              ~specs:t.tool.Tool.specs
              [ (path, text) ]
          in
          let s = Session.open_project ~on_event:(on_event t session) req in
          t.session <- Some s;
          [ path ])

let drop t ~path : string list =
  Hashtbl.remove t.texts path;
  Span.with_span ~cat:"serve" ~args:[ ("path", path) ] "session.drop"
    (fun () ->
      match t.session with
      | Some s -> Session.remove_file s ~path
      | None -> [])

(* ------------------------------------------------------------------ *)
(* Diagnostics.                                                        *)

let position line character =
  Json.Obj [ ("line", Json.Int line); ("character", Json.Int character) ]

let range l0 c0 l1 c1 =
  Json.Obj [ ("start", position l0 c0); ("end", position l1 c1) ]

(* LSP lines are 0-based; {!Wap_php.Loc} lines are 1-based (columns are
   0-based on both sides).  The reported span covers the sink name. *)
let range_of_candidate (c : Trace.candidate) =
  let line = max 0 (c.Trace.sink_loc.Wap_php.Loc.line - 1) in
  let col = max 0 c.Trace.sink_loc.Wap_php.Loc.col in
  range line col line (col + String.length c.Trace.sink_name)

let diagnostic_of_candidate t (c : Trace.candidate) =
  let predicted_fp =
    Wap_mining.Predictor.is_false_positive t.tool.Tool.predictor c
  in
  let message =
    if predicted_fp then Trace.summary c ^ " (predicted false positive)"
    else Trace.summary c
  in
  Json.Obj
    [
      ("range", range_of_candidate c);
      ("severity", Json.Int (if predicted_fp then 2 else 1));
      ("code", Json.Str (Wap_catalog.Vuln_class.acronym c.Trace.vclass));
      ("source", Json.Str "wap");
      ("message", Json.Str message);
    ]

(* De-duplicated finalized candidates whose sink is in [path] — the
   same collapse the batch pipeline applies before prediction (RFI and
   LFI both firing on one include yield one diagnostic). *)
let candidates_for t ~path : Trace.candidate list =
  match t.session with
  | None -> []
  | Some s -> Tool.dedup_candidates (List.map snd (Session.diagnostics s ~path))

let diagnostics_json t ~path =
  Json.List (List.map (diagnostic_of_candidate t) (candidates_for t ~path))

(* Publish diagnostics for every open document whose rendered
   diagnostics differ from the last publish.  Deterministic (sorted by
   URI) so the smoke test can rely on message order. *)
let publish_changed t : Json.t list =
  Span.with_span ~cat:"serve" "publish" @@ fun () ->
  let open_uris =
    List.sort compare (Hashtbl.fold (fun uri _ acc -> uri :: acc) t.docs [])
  in
  List.filter_map
    (fun uri ->
      let path = Hashtbl.find t.docs uri in
      let diags = diagnostics_json t ~path in
      let rendered = Json.to_string ~indent:false diags in
      if Hashtbl.find_opt t.published uri = Some rendered then None
      else begin
        Hashtbl.replace t.published uri rendered;
        Some
          (Rpc.notification "textDocument/publishDiagnostics"
             (Json.Obj [ ("uri", Json.Str uri); ("diagnostics", diags) ]))
      end)
    open_uris

(* ------------------------------------------------------------------ *)
(* Text-document notifications.                                        *)

let text_document_uri params =
  match Json.member "textDocument" params with
  | Some td -> Rpc.str_member "uri" td
  | None -> None

let did_open t params : Json.t list =
  let text =
    match Json.member "textDocument" params with
    | Some td -> Rpc.str_member "text" td
    | None -> None
  in
  match (text_document_uri params, text) with
  | Some uri, Some text ->
      let path = path_of_uri uri in
      Hashtbl.replace t.docs uri path;
      Hashtbl.replace t.uris path uri;
      let reran = upsert t ~path text in
      t.m_last_reanalyzed <- List.length reran;
      Log.info
        ~fields:
          [ ("uri", uri); ("reanalyzed", string_of_int (List.length reran)) ]
        "didOpen";
      publish_changed t
  | _ ->
      Log.warn "didOpen without textDocument.uri/text";
      []

(* Full-document sync (capability [change: 1]): the last content change
   carries the whole new text. *)
let did_change t params : Json.t list =
  let text =
    match Json.member "contentChanges" params with
    | Some changes -> (
        match Json.to_list_opt changes with
        | Some (_ :: _ as l) -> Rpc.str_member "text" (List.nth l (List.length l - 1))
        | _ -> None)
    | None -> None
  in
  match (text_document_uri params, text) with
  | Some uri, Some text ->
      let path = path_of_uri uri in
      if not (Hashtbl.mem t.docs uri) then begin
        Hashtbl.replace t.docs uri path;
        Hashtbl.replace t.uris path uri
      end;
      let reran = upsert t ~path text in
      t.m_last_reanalyzed <- List.length reran;
      Log.debug
        ~fields:
          [ ("uri", uri); ("reanalyzed", string_of_int (List.length reran)) ]
        "didChange";
      publish_changed t
  | _ ->
      Log.warn "didChange without textDocument.uri/contentChanges";
      []

let did_close t params : Json.t list =
  match text_document_uri params with
  | Some uri ->
      let path =
        match Hashtbl.find_opt t.docs uri with
        | Some p -> p
        | None -> path_of_uri uri
      in
      Hashtbl.remove t.docs uri;
      Hashtbl.remove t.uris path;
      t.m_last_reanalyzed <- List.length (drop t ~path);
      let clear =
        (* Closing a document always clears its diagnostics on the
           client; skip only if we never published any. *)
        match Hashtbl.find_opt t.published uri with
        | None | Some "[]" ->
            Hashtbl.remove t.published uri;
            []
        | Some _ ->
            Hashtbl.remove t.published uri;
            [
              Rpc.notification "textDocument/publishDiagnostics"
                (Json.Obj
                   [ ("uri", Json.Str uri); ("diagnostics", Json.List []) ]);
            ]
      in
      clear @ publish_changed t
  | None -> []

(* ------------------------------------------------------------------ *)
(* Code actions: the fixer's templates as whole-document edits.        *)

let count_lines (s : string) : int =
  1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

let default_malicious = [ '\''; '"'; '\\'; '<'; '>' ]

(* The three automatic templates of {!Wap_fixer.Fix}: the class's stock
   fix (a [Php_sanitization] for most classes), a [User_sanitization]
   and a [User_validation] over the usual metacharacters. *)
let fixes_for (c : Trace.candidate) : (string * Wap_fixer.Fix.t) list =
  let acr =
    String.lowercase_ascii (Wap_catalog.Vuln_class.acronym c.Trace.vclass)
  in
  let stock = Wap_fixer.Fix.stock c.Trace.vclass in
  [
    ( Printf.sprintf "Apply stock fix %s" stock.Wap_fixer.Fix.fix_name,
      stock );
    ( "Sanitize input (neutralize metacharacters)",
      {
        Wap_fixer.Fix.fix_name = "san_user_" ^ acr;
        vclass = c.Trace.vclass;
        template =
          Wap_fixer.Fix.User_sanitization
            { malicious = default_malicious; neutralizer = "" };
      } );
    ( "Validate input (reject metacharacters)",
      {
        Wap_fixer.Fix.fix_name = "val_user_" ^ acr;
        vclass = c.Trace.vclass;
        template = Wap_fixer.Fix.User_validation { malicious = default_malicious };
      } );
  ]

let action_of t ~uri ~path ~text (c : Trace.candidate) (title, fix) :
    Json.t option =
  let program, _errors = Wap_php.Parser.parse_string_tolerant ~file:path text in
  let fixed, report =
    Wap_fixer.Corrector.correct_program program
      [ { Wap_fixer.Corrector.candidate = c; fix } ]
  in
  match report.Wap_fixer.Corrector.applied with
  | [] -> None
  | _ ->
      let new_text = Wap_php.Printer.program_to_string fixed in
      let whole_doc = range 0 0 (count_lines text) 0 in
      let edit =
        Json.Obj
          [
            ( "changes",
              Json.Obj
                [
                  ( uri,
                    Json.List
                      [
                        Json.Obj
                          [
                            ("range", whole_doc);
                            ("newText", Json.Str new_text);
                          ];
                      ] );
                ] );
          ]
      in
      Some
        (Json.Obj
           [
             ("title", Json.Str title);
             ("kind", Json.Str "quickfix");
             ("diagnostics", Json.List [ diagnostic_of_candidate t c ]);
             ("edit", edit);
           ])

let code_actions t params : Json.t =
  match text_document_uri params with
  | None -> Json.List []
  | Some uri -> (
      let path =
        match Hashtbl.find_opt t.docs uri with
        | Some p -> p
        | None -> path_of_uri uri
      in
      match Hashtbl.find_opt t.texts path with
      | None -> Json.List []
      | Some text ->
          let start_line, end_line =
            match Json.member "range" params with
            | Some r -> (
                let line k =
                  Option.bind (Json.member k r) (Rpc.int_member "line")
                in
                match (line "start", line "end") with
                | Some s, Some e -> (s, e)
                | Some s, None -> (s, s)
                | _ -> (0, max_int))
            | None -> (0, max_int)
          in
          let in_range (c : Trace.candidate) =
            let l = c.Trace.sink_loc.Wap_php.Loc.line - 1 in
            l >= start_line && l <= end_line
          in
          let actions =
            candidates_for t ~path
            |> List.filter in_range
            |> List.concat_map (fun c ->
                   List.filter_map
                     (action_of t ~uri ~path ~text c)
                     (fixes_for c))
          in
          Json.List actions)

(* ------------------------------------------------------------------ *)
(* Dispatch.                                                           *)

let initialize_result t =
  Json.Obj
    [
      ( "capabilities",
        Json.Obj
          [
            ( "textDocumentSync",
              Json.Obj
                [
                  ("openClose", Json.Bool true);
                  ("change", Json.Int 1) (* full-document sync *);
                ] );
            ("codeActionProvider", Json.Bool true);
          ] );
      ( "serverInfo",
        Json.Obj
          [
            ("name", Json.Str "wap");
            ("version", Json.Str (Wap_core.Version.name t.tool.Tool.version));
          ] );
    ]

let dispatch (t : t) (msg : Json.t) : Json.t list =
  let meth = Option.value (Rpc.meth msg) ~default:"" in
  let params = Rpc.params msg in
  match (meth, Rpc.id msg) with
  | "initialize", Some id -> [ Rpc.response ~id (initialize_result t) ]
  | "initialized", _ -> []
  | "shutdown", Some id ->
      t.shutdown_requested <- true;
      [ Rpc.response ~id Json.Null ]
  | "exit", _ ->
      t.finished <- true;
      []
  | "textDocument/didOpen", _ -> did_open t params
  | "textDocument/didChange", _ -> did_change t params
  | "textDocument/didClose", _ -> did_close t params
  | "textDocument/codeAction", Some id ->
      [ Rpc.response ~id (code_actions t params) ]
  | _, Some id ->
      [ Rpc.error_response ~id ~code:(-32601) ("method not found: " ^ meth) ]
  | _, None ->
      Log.debug ~fields:[ ("method", meth) ] "ignoring notification";
      []

(* ------------------------------------------------------------------ *)
(* Request instrumentation.  [handle] = [dispatch] wrapped in a request
   id (ambient in the log context), a span, a per-method latency
   histogram and error counter, and the slow-request warning.  None of
   it touches what [dispatch] computes — telemetry observes the session,
   it never feeds back into it. *)

(* The per-method metric label set is closed over the protocol we
   actually speak; anything else folds into "other" so a misbehaving
   client can't inflate the registry. *)
let metric_method = function
  | ( "initialize" | "initialized" | "shutdown" | "exit"
    | "textDocument/didOpen" | "textDocument/didChange"
    | "textDocument/didClose" | "textDocument/codeAction" ) as m ->
      m
  | _ -> "other"

let is_error_msg = function
  | Json.Obj fields -> List.mem_assoc "error" fields
  | _ -> false

(* Refresh the admin plane's mirror fields and gauges — called in the
   serving domain after every message, so the admin domain only ever
   reads plain word-sized values. *)
let refresh_mirrors t =
  t.m_ready <- t.session <> None;
  t.m_open_docs <- Hashtbl.length t.docs;
  Metrics.set
    (Metrics.gauge "serve.open_documents")
    (float_of_int t.m_open_docs);
  match t.session with
  | None -> ()
  | Some s ->
      let st = Session.stats s in
      t.m_generation <- st.Session.st_generation;
      t.m_files <- st.Session.st_files;
      t.m_candidates <- st.Session.st_candidates;
      t.m_cache_hits <- st.Session.st_cache_hits;
      t.m_cache_misses <- st.Session.st_cache_misses;
      Metrics.set
        (Metrics.gauge "serve.session_generation")
        (float_of_int st.Session.st_generation);
      Metrics.set
        (Metrics.gauge "serve.session_files")
        (float_of_int st.Session.st_files);
      Metrics.set
        (Metrics.gauge "serve.session_candidates")
        (float_of_int st.Session.st_candidates)

let handle (t : t) (msg : Json.t) : Json.t list =
  let meth = Option.value (Rpc.meth msg) ~default:"(none)" in
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  t.m_requests <- t.m_requests + 1;
  Log.with_context [ ("rid", string_of_int rid) ] (fun () ->
      let t0 = Unix.gettimeofday () in
      let out =
        Span.with_span ~cat:"serve" ~args:[ ("rid", string_of_int rid) ] meth
          (fun () -> dispatch t msg)
      in
      let dt = Unix.gettimeofday () -. t0 in
      let m = metric_method meth in
      Metrics.incr (Metrics.counter ("serve.requests." ^ m));
      Metrics.observe (Metrics.histogram ("serve.request_seconds." ^ m)) dt;
      let errors = List.length (List.filter is_error_msg out) in
      if errors > 0 then begin
        t.m_errors <- t.m_errors + errors;
        Metrics.incr ~by:errors (Metrics.counter ("serve.errors." ^ m))
      end;
      if dt > t.slow_s then
        Log.warn
          ~fields:
            [ ("method", meth); ("ms", Printf.sprintf "%.1f" (dt *. 1000.)) ]
          "slow request";
      refresh_mirrors t;
      out)

(* ------------------------------------------------------------------ *)
(* Transports.                                                         *)

let serve_channels (t : t) (ic : in_channel) (oc : out_channel) : unit =
  let rec loop () =
    if not t.finished then
      (* the decode span includes the wait for the client's next frame,
         so gaps between requests are visible in the trace as such *)
      match Span.with_span ~cat:"serve" "decode" (fun () -> Rpc.read_message ic) with
      | None -> ()
      | Some (Error e) ->
          Metrics.incr (Metrics.counter "serve.rejected_frames");
          Log.warn ~fields:[ ("error", e) ] "malformed message";
          loop ()
      | Some (Ok msg) ->
          List.iter (Rpc.write_message oc) (handle t msg);
          loop ()
  in
  loop ()

let run_stdio (t : t) : unit = serve_channels t stdin stdout

let peer_string fd =
  match Unix.getpeername fd with
  | Unix.ADDR_UNIX _ -> "unix"
  | Unix.ADDR_INET (a, p) ->
      Unix.string_of_inet_addr a ^ ":" ^ string_of_int p
  | exception _ -> "unknown"

let accept_loop t sock =
  let rec loop () =
    if not t.finished then begin
      let fd, _ = Unix.accept sock in
      let peer = peer_string fd in
      Metrics.incr (Metrics.counter "serve.connections");
      Log.info ~fields:[ ("peer", peer) ] "client connected";
      let t0 = Unix.gettimeofday () in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      (try serve_channels t ic oc
       with e ->
         Log.warn ~fields:[ ("error", Printexc.to_string e) ] "client error");
      Metrics.incr (Metrics.counter "serve.disconnects");
      Log.info
        ~fields:
          [
            ("peer", peer);
            ("seconds", Printf.sprintf "%.3f" (Unix.gettimeofday () -. t0));
          ]
        "client disconnected";
      (try close_out oc with _ -> ());
      (try close_in ic with _ -> ());
      loop ()
    end
  in
  loop ()

let run_unix_socket (t : t) ~path : unit =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 1;
  Log.info ~fields:[ ("socket", path) ] "listening";
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with _ -> ());
      try Unix.unlink path with _ -> ())
    (fun () -> accept_loop t sock)

let run_tcp (t : t) ~port : unit =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 1;
  Log.info ~fields:[ ("port", string_of_int port) ] "listening";
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () -> accept_loop t sock)

(* Introspection for tests. *)
let session t = t.session
let stale_events t = t.stale_events

(* ------------------------------------------------------------------ *)
(* Admin plane surface.  Everything here reads mirror fields the
   serving domain refreshed after its last message — safe from any
   domain, never touching the session. *)

let ready t = t.m_ready

let status_json t : Json.t =
  let hits = t.m_cache_hits and misses = t.m_cache_misses in
  let ratio =
    let total = hits + misses in
    if total = 0 then 0. else float_of_int hits /. float_of_int total
  in
  let tracer_fields =
    match Span.global () with
    | Some tr ->
        [
          ("trace_events", Json.Int (Span.event_count tr));
          ("trace_dropped", Json.Int (Span.dropped tr));
        ]
    | None -> []
  in
  let rss_fields =
    match Wap_obs.Expo.rss_bytes () with
    | Some b -> [ ("rss_bytes", Json.Int b) ]
    | None -> []
  in
  Json.Obj
    ([
       ("service", Json.Str "wap serve");
       ("version", Json.Str (Wap_core.Version.name t.tool.Tool.version));
       ("uptime_seconds", Json.Float (Unix.gettimeofday () -. t.start_time));
       ("ready", Json.Bool t.m_ready);
       ("generation", Json.Int t.m_generation);
       ("open_documents", Json.Int t.m_open_docs);
       ("session_files", Json.Int t.m_files);
       ("session_candidates", Json.Int t.m_candidates);
       ("cache_hits", Json.Int hits);
       ("cache_misses", Json.Int misses);
       ("cache_hit_ratio", Json.Float ratio);
       ("requests", Json.Int t.m_requests);
       ("errors", Json.Int t.m_errors);
       ("stale_events", Json.Int t.stale_events);
       ("last_reanalyzed", Json.Int t.m_last_reanalyzed);
     ]
    @ tracer_fields @ rss_fields)

let admin_source t : Admin.source =
  {
    Admin.ready = (fun () -> ready t);
    status = (fun () -> status_json t);
    registry = Metrics.global;
    tracer = (fun () -> Span.global ());
  }
