(** The [wap serve] LSP diagnostics daemon.

    A thin language-server shell around {!Wap_engine.Session}: the set
    of open editor documents {e is} the project.  The first [didOpen]
    opens a session; further opens/changes/closes map to
    {!Session.add_file}/{!Session.update_file}/{!Session.remove_file},
    so an edit re-analyzes only the touched file (and its include
    dependents) while diagnostics for every open document stay
    consistent.  Diagnostics are published per document and only when
    they changed since the last publish; findings the false-positive
    predictor flags are demoted to warnings.  [codeAction] offers the
    fixer's templates (the class's stock fix, user sanitization, user
    validation) as whole-document workspace edits.

    {!handle} is a pure-ish message-in/messages-out step so tests can
    drive the protocol in-process; {!serve_channels} and the
    stdio/socket/TCP runners wrap it in a read loop. *)

module Json = Wap_report.Json
module Session = Wap_engine.Session
module Trace = Wap_taint.Trace
module Tool = Wap_core.Tool
module Log = Wap_obs.Log

type t = {
  tool : Tool.t;
  jobs : int;
  mutable session : Session.t option;  (** created at the first [didOpen] *)
  docs : (string, string) Hashtbl.t;  (** open documents: uri -> path *)
  uris : (string, string) Hashtbl.t;  (** inverse: path -> uri *)
  texts : (string, string) Hashtbl.t;  (** path -> current text *)
  published : (string, string) Hashtbl.t;
      (** uri -> serialized diagnostics last pushed, to skip no-op
          publishes *)
  mutable events_seen : int;
  mutable stale_events : int;
      (** session progress events tagged with a superseded generation
          (see {!Session.event}) — counted and dropped *)
  mutable shutdown_requested : bool;
  mutable finished : bool;
}

let create ?jobs (tool : Tool.t) : t =
  {
    tool;
    jobs = Wap_engine.Config.jobs jobs;
    session = None;
    docs = Hashtbl.create 16;
    uris = Hashtbl.create 16;
    texts = Hashtbl.create 16;
    published = Hashtbl.create 16;
    events_seen = 0;
    stale_events = 0;
    shutdown_requested = false;
    finished = false;
  }

let finished t = t.finished

(* ------------------------------------------------------------------ *)
(* URIs.  Editors send file:// URIs with percent-encoding; the session
   keys files by plain path.  Both mappings are kept so diagnostics go
   back out under the exact URI the client opened. *)

let percent_decode (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' && i + 2 < n then
        match (hex s.[i + 1], hex s.[i + 2]) with
        | Some h, Some l ->
            Buffer.add_char buf (Char.chr ((h * 16) + l));
            go (i + 3)
        | _ ->
            Buffer.add_char buf s.[i];
            go (i + 1)
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let path_of_uri (uri : string) : string =
  let uri = percent_decode uri in
  let prefix = "file://" in
  let pn = String.length prefix in
  if String.length uri >= pn && String.sub uri 0 pn = prefix then
    String.sub uri pn (String.length uri - pn)
  else uri

(* ------------------------------------------------------------------ *)
(* Session plumbing.                                                   *)

let on_event t (current_generation : unit -> int) (ev : Session.event) =
  t.events_seen <- t.events_seen + 1;
  if ev.Session.generation < current_generation () then
    (* A notification from a superseded edit: discard (the generation
       counter exists exactly for this). *)
    t.stale_events <- t.stale_events + 1
  else if Log.enabled Log.Debug then
    Log.debug
      ~fields:[ ("generation", string_of_int ev.Session.generation) ]
      "session progress"

(* Route the document into the session, creating it on first use.
   Returns the paths whose analysis re-ran (informational). *)
let upsert t ~path text : string list =
  Hashtbl.replace t.texts path text;
  match t.session with
  | Some s ->
      if Session.mem s ~path then Session.update_file s ~path text
      else Session.add_file s ~path text
  | None ->
      let session () =
        match t.session with Some s -> Session.generation s | None -> 0
      in
      let req =
        Session.request ~jobs:t.jobs
          ~fingerprint:(Tool.Scan.fingerprint t.tool)
          ~specs:t.tool.Tool.specs
          [ (path, text) ]
      in
      let s = Session.open_project ~on_event:(on_event t session) req in
      t.session <- Some s;
      [ path ]

let drop t ~path : string list =
  Hashtbl.remove t.texts path;
  match t.session with
  | Some s -> Session.remove_file s ~path
  | None -> []

(* ------------------------------------------------------------------ *)
(* Diagnostics.                                                        *)

let position line character =
  Json.Obj [ ("line", Json.Int line); ("character", Json.Int character) ]

let range l0 c0 l1 c1 =
  Json.Obj [ ("start", position l0 c0); ("end", position l1 c1) ]

(* LSP lines are 0-based; {!Wap_php.Loc} lines are 1-based (columns are
   0-based on both sides).  The reported span covers the sink name. *)
let range_of_candidate (c : Trace.candidate) =
  let line = max 0 (c.Trace.sink_loc.Wap_php.Loc.line - 1) in
  let col = max 0 c.Trace.sink_loc.Wap_php.Loc.col in
  range line col line (col + String.length c.Trace.sink_name)

let diagnostic_of_candidate t (c : Trace.candidate) =
  let predicted_fp =
    Wap_mining.Predictor.is_false_positive t.tool.Tool.predictor c
  in
  let message =
    if predicted_fp then Trace.summary c ^ " (predicted false positive)"
    else Trace.summary c
  in
  Json.Obj
    [
      ("range", range_of_candidate c);
      ("severity", Json.Int (if predicted_fp then 2 else 1));
      ("code", Json.Str (Wap_catalog.Vuln_class.acronym c.Trace.vclass));
      ("source", Json.Str "wap");
      ("message", Json.Str message);
    ]

(* De-duplicated finalized candidates whose sink is in [path] — the
   same collapse the batch pipeline applies before prediction (RFI and
   LFI both firing on one include yield one diagnostic). *)
let candidates_for t ~path : Trace.candidate list =
  match t.session with
  | None -> []
  | Some s -> Tool.dedup_candidates (List.map snd (Session.diagnostics s ~path))

let diagnostics_json t ~path =
  Json.List (List.map (diagnostic_of_candidate t) (candidates_for t ~path))

(* Publish diagnostics for every open document whose rendered
   diagnostics differ from the last publish.  Deterministic (sorted by
   URI) so the smoke test can rely on message order. *)
let publish_changed t : Json.t list =
  let open_uris =
    List.sort compare (Hashtbl.fold (fun uri _ acc -> uri :: acc) t.docs [])
  in
  List.filter_map
    (fun uri ->
      let path = Hashtbl.find t.docs uri in
      let diags = diagnostics_json t ~path in
      let rendered = Json.to_string ~indent:false diags in
      if Hashtbl.find_opt t.published uri = Some rendered then None
      else begin
        Hashtbl.replace t.published uri rendered;
        Some
          (Rpc.notification "textDocument/publishDiagnostics"
             (Json.Obj [ ("uri", Json.Str uri); ("diagnostics", diags) ]))
      end)
    open_uris

(* ------------------------------------------------------------------ *)
(* Text-document notifications.                                        *)

let text_document_uri params =
  match Json.member "textDocument" params with
  | Some td -> Rpc.str_member "uri" td
  | None -> None

let did_open t params : Json.t list =
  let text =
    match Json.member "textDocument" params with
    | Some td -> Rpc.str_member "text" td
    | None -> None
  in
  match (text_document_uri params, text) with
  | Some uri, Some text ->
      let path = path_of_uri uri in
      Hashtbl.replace t.docs uri path;
      Hashtbl.replace t.uris path uri;
      let reran = upsert t ~path text in
      Log.info
        ~fields:
          [ ("uri", uri); ("reanalyzed", string_of_int (List.length reran)) ]
        "didOpen";
      publish_changed t
  | _ ->
      Log.warn "didOpen without textDocument.uri/text";
      []

(* Full-document sync (capability [change: 1]): the last content change
   carries the whole new text. *)
let did_change t params : Json.t list =
  let text =
    match Json.member "contentChanges" params with
    | Some changes -> (
        match Json.to_list_opt changes with
        | Some (_ :: _ as l) -> Rpc.str_member "text" (List.nth l (List.length l - 1))
        | _ -> None)
    | None -> None
  in
  match (text_document_uri params, text) with
  | Some uri, Some text ->
      let path = path_of_uri uri in
      if not (Hashtbl.mem t.docs uri) then begin
        Hashtbl.replace t.docs uri path;
        Hashtbl.replace t.uris path uri
      end;
      let reran = upsert t ~path text in
      Log.debug
        ~fields:
          [ ("uri", uri); ("reanalyzed", string_of_int (List.length reran)) ]
        "didChange";
      publish_changed t
  | _ ->
      Log.warn "didChange without textDocument.uri/contentChanges";
      []

let did_close t params : Json.t list =
  match text_document_uri params with
  | Some uri ->
      let path =
        match Hashtbl.find_opt t.docs uri with
        | Some p -> p
        | None -> path_of_uri uri
      in
      Hashtbl.remove t.docs uri;
      Hashtbl.remove t.uris path;
      ignore (drop t ~path);
      let clear =
        (* Closing a document always clears its diagnostics on the
           client; skip only if we never published any. *)
        match Hashtbl.find_opt t.published uri with
        | None | Some "[]" ->
            Hashtbl.remove t.published uri;
            []
        | Some _ ->
            Hashtbl.remove t.published uri;
            [
              Rpc.notification "textDocument/publishDiagnostics"
                (Json.Obj
                   [ ("uri", Json.Str uri); ("diagnostics", Json.List []) ]);
            ]
      in
      clear @ publish_changed t
  | None -> []

(* ------------------------------------------------------------------ *)
(* Code actions: the fixer's templates as whole-document edits.        *)

let count_lines (s : string) : int =
  1 + String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

let default_malicious = [ '\''; '"'; '\\'; '<'; '>' ]

(* The three automatic templates of {!Wap_fixer.Fix}: the class's stock
   fix (a [Php_sanitization] for most classes), a [User_sanitization]
   and a [User_validation] over the usual metacharacters. *)
let fixes_for (c : Trace.candidate) : (string * Wap_fixer.Fix.t) list =
  let acr =
    String.lowercase_ascii (Wap_catalog.Vuln_class.acronym c.Trace.vclass)
  in
  let stock = Wap_fixer.Fix.stock c.Trace.vclass in
  [
    ( Printf.sprintf "Apply stock fix %s" stock.Wap_fixer.Fix.fix_name,
      stock );
    ( "Sanitize input (neutralize metacharacters)",
      {
        Wap_fixer.Fix.fix_name = "san_user_" ^ acr;
        vclass = c.Trace.vclass;
        template =
          Wap_fixer.Fix.User_sanitization
            { malicious = default_malicious; neutralizer = "" };
      } );
    ( "Validate input (reject metacharacters)",
      {
        Wap_fixer.Fix.fix_name = "val_user_" ^ acr;
        vclass = c.Trace.vclass;
        template = Wap_fixer.Fix.User_validation { malicious = default_malicious };
      } );
  ]

let action_of t ~uri ~path ~text (c : Trace.candidate) (title, fix) :
    Json.t option =
  let program, _errors = Wap_php.Parser.parse_string_tolerant ~file:path text in
  let fixed, report =
    Wap_fixer.Corrector.correct_program program
      [ { Wap_fixer.Corrector.candidate = c; fix } ]
  in
  match report.Wap_fixer.Corrector.applied with
  | [] -> None
  | _ ->
      let new_text = Wap_php.Printer.program_to_string fixed in
      let whole_doc = range 0 0 (count_lines text) 0 in
      let edit =
        Json.Obj
          [
            ( "changes",
              Json.Obj
                [
                  ( uri,
                    Json.List
                      [
                        Json.Obj
                          [
                            ("range", whole_doc);
                            ("newText", Json.Str new_text);
                          ];
                      ] );
                ] );
          ]
      in
      Some
        (Json.Obj
           [
             ("title", Json.Str title);
             ("kind", Json.Str "quickfix");
             ("diagnostics", Json.List [ diagnostic_of_candidate t c ]);
             ("edit", edit);
           ])

let code_actions t params : Json.t =
  match text_document_uri params with
  | None -> Json.List []
  | Some uri -> (
      let path =
        match Hashtbl.find_opt t.docs uri with
        | Some p -> p
        | None -> path_of_uri uri
      in
      match Hashtbl.find_opt t.texts path with
      | None -> Json.List []
      | Some text ->
          let start_line, end_line =
            match Json.member "range" params with
            | Some r -> (
                let line k =
                  Option.bind (Json.member k r) (Rpc.int_member "line")
                in
                match (line "start", line "end") with
                | Some s, Some e -> (s, e)
                | Some s, None -> (s, s)
                | _ -> (0, max_int))
            | None -> (0, max_int)
          in
          let in_range (c : Trace.candidate) =
            let l = c.Trace.sink_loc.Wap_php.Loc.line - 1 in
            l >= start_line && l <= end_line
          in
          let actions =
            candidates_for t ~path
            |> List.filter in_range
            |> List.concat_map (fun c ->
                   List.filter_map
                     (action_of t ~uri ~path ~text c)
                     (fixes_for c))
          in
          Json.List actions)

(* ------------------------------------------------------------------ *)
(* Dispatch.                                                           *)

let initialize_result t =
  Json.Obj
    [
      ( "capabilities",
        Json.Obj
          [
            ( "textDocumentSync",
              Json.Obj
                [
                  ("openClose", Json.Bool true);
                  ("change", Json.Int 1) (* full-document sync *);
                ] );
            ("codeActionProvider", Json.Bool true);
          ] );
      ( "serverInfo",
        Json.Obj
          [
            ("name", Json.Str "wap");
            ("version", Json.Str (Wap_core.Version.name t.tool.Tool.version));
          ] );
    ]

let handle (t : t) (msg : Json.t) : Json.t list =
  let meth = Option.value (Rpc.meth msg) ~default:"" in
  let params = Rpc.params msg in
  match (meth, Rpc.id msg) with
  | "initialize", Some id -> [ Rpc.response ~id (initialize_result t) ]
  | "initialized", _ -> []
  | "shutdown", Some id ->
      t.shutdown_requested <- true;
      [ Rpc.response ~id Json.Null ]
  | "exit", _ ->
      t.finished <- true;
      []
  | "textDocument/didOpen", _ -> did_open t params
  | "textDocument/didChange", _ -> did_change t params
  | "textDocument/didClose", _ -> did_close t params
  | "textDocument/codeAction", Some id ->
      [ Rpc.response ~id (code_actions t params) ]
  | _, Some id ->
      [ Rpc.error_response ~id ~code:(-32601) ("method not found: " ^ meth) ]
  | _, None ->
      Log.debug ~fields:[ ("method", meth) ] "ignoring notification";
      []

(* ------------------------------------------------------------------ *)
(* Transports.                                                         *)

let serve_channels (t : t) (ic : in_channel) (oc : out_channel) : unit =
  let rec loop () =
    if not t.finished then
      match Rpc.read_message ic with
      | None -> ()
      | Some (Error e) ->
          Log.warn ~fields:[ ("error", e) ] "malformed message";
          loop ()
      | Some (Ok msg) ->
          List.iter (Rpc.write_message oc) (handle t msg);
          loop ()
  in
  loop ()

let run_stdio (t : t) : unit = serve_channels t stdin stdout

let accept_loop t sock =
  let rec loop () =
    if not t.finished then begin
      let fd, _ = Unix.accept sock in
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      (try serve_channels t ic oc
       with e ->
         Log.warn ~fields:[ ("error", Printexc.to_string e) ] "client error");
      (try close_out oc with _ -> ());
      (try close_in ic with _ -> ());
      loop ()
    end
  in
  loop ()

let run_unix_socket (t : t) ~path : unit =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 1;
  Log.info ~fields:[ ("socket", path) ] "listening";
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with _ -> ());
      try Unix.unlink path with _ -> ())
    (fun () -> accept_loop t sock)

let run_tcp (t : t) ~port : unit =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 1;
  Log.info ~fields:[ ("port", string_of_int port) ] "listening";
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with _ -> ())
    (fun () -> accept_loop t sock)

(* Introspection for tests. *)
let session t = t.session
let stale_events t = t.stale_events
