(** The [wap serve] LSP diagnostics daemon: a language-server shell
    around {!Wap_engine.Session}.

    The set of open editor documents is the analyzed project.  The
    first [textDocument/didOpen] opens a session; further
    opens/changes/closes map to the session's incremental
    [add_file]/[update_file]/[remove_file], so an edit re-analyzes only
    the touched file (plus its include dependents).  Diagnostics are
    pushed with [textDocument/publishDiagnostics], only when they
    changed; predicted false positives are demoted to warnings (LSP
    severity 2) and tagged in the message.  [textDocument/codeAction]
    offers the fixer's templates — the class's stock fix, a user
    sanitization and a user validation — as whole-document workspace
    edits.

    Supported messages: [initialize], [initialized], [shutdown],
    [exit], [textDocument/didOpen|didChange|didClose|codeAction].
    Unknown requests get a [-32601] error; unknown notifications are
    ignored.  Text synchronization is full-document ([change: 1]). *)

type t

(** [create tool] — a fresh server around an assembled WAP tool.
    [jobs] resolves through {!Wap_engine.Config} ([WAP_JOBS]).
    Requests slower than [slow_ms] milliseconds log a warning
    (disabled when absent or non-positive). *)
val create : ?jobs:int -> ?slow_ms:float -> Wap_core.Tool.t -> t

(** Process one decoded client message; returns the messages to send
    back (the response if it was a request, plus any publish
    notifications), in order.  This is the whole protocol state
    machine — tests drive it in-process without a transport. *)
val handle : t -> Wap_report.Json.t -> Wap_report.Json.t list

(** True once the [exit] notification was received. *)
val finished : t -> bool

(** Read framed messages from the channel, {!handle} them, write the
    output messages back, until [exit] or end of input. *)
val serve_channels : t -> in_channel -> out_channel -> unit

(** Serve one client over stdin/stdout (logs go to stderr). *)
val run_stdio : t -> unit

(** Listen on a Unix-domain socket at [path] (created, removed on
    shutdown), serving clients sequentially until [exit]. *)
val run_unix_socket : t -> path:string -> unit

(** Listen on localhost TCP [port], serving clients sequentially until
    [exit]. *)
val run_tcp : t -> port:int -> unit

(** The underlying session, once the first document was opened. *)
val session : t -> Wap_engine.Session.t option

(** Progress events discarded because their generation tag was
    superseded by a newer edit (see {!Wap_engine.Session.event}). *)
val stale_events : t -> int

(** Has a session been opened (the first [didOpen] arrived)?  The
    [/readyz] predicate; reads a mirror field, safe from any domain. *)
val ready : t -> bool

(** The [/status] document: uptime, readiness, generation, open
    document / session file / candidate counts, cache hit ratio,
    request and error totals, stale events, trace-ring occupancy and
    RSS.  Reads only mirror fields the serving domain refreshes after
    each message, so the admin domain can call it concurrently with
    LSP traffic. *)
val status_json : t -> Wap_report.Json.t

(** The {!Admin.source} for this server: {!ready}, {!status_json}, the
    global metrics registry and the global tracer. *)
val admin_source : t -> Admin.source
