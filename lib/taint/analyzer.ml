(** The taint analyzer: one fused flow-sensitive pass detecting
    candidate vulnerabilities for {e all} active detector specs at once.

    The analysis is flow-sensitive inside each scope and interprocedural
    through {!Summary} tables.  Sanitization functions of a spec kill
    that spec's taint component only; validation functions do {e not}
    kill anything — they add guard evidence to the flow, exactly like
    the original WAP, whose false-positive predictor is in charge of
    deciding whether the observed validations make the candidate a false
    alarm.

    Taint values are per-spec vectors ({!Env.taint}): entry points mark
    the components of the specs they feed, each spec's sanitizers clear
    only that spec's component, and a sink emits one candidate per spec
    whose component survives.  Components never interact across specs,
    so the fused run computes — component by component, in one AST
    walk — exactly what one single-spec run per spec would, while doing
    the spec-independent work (rendering, traversal, environment
    bookkeeping, include splicing) once instead of N times. *)

open Wap_php
module VC = Wap_catalog.Vuln_class
module Cat = Wap_catalog.Catalog
module Lookup = Wap_catalog.Catalog.Lookup

(* ------------------------------------------------------------------ *)
(* Call-name normalization.                                            *)

(* PHP function and method names are case-insensitive; every name that
   enters a catalog lookup or a summary table goes through here. *)
let normalize_fn = String.lowercase_ascii

(* ------------------------------------------------------------------ *)
(* Validation guards (Table I, validation category).                   *)

let set_check_fns = [ "isset"; "empty"; "is_null" ]

(* Functions whose return value is never attacker-controlled text even
   when their arguments are tainted: query handles, counters, error
   strings.  Without this barrier a tainted SQL string would taint the
   result resource and, through a fetch, every page that renders query
   results. *)
let return_clean_fns =
  [ "mysql_query"; "mysql_unbuffered_query"; "mysql_db_query"; "mysqli_query";
    "mysqli_multi_query"; "mysqli_real_query"; "pg_query"; "pg_send_query";
    "sqlite_query"; "sqlite_exec"; "mysql_num_rows"; "mysqli_num_rows";
    "mysql_insert_id"; "mysql_affected_rows"; "mysql_error"; "mysqli_error";
    "count"; "sizeof"; "strlen"; "array_key_exists" ]

let guard_fns =
  set_check_fns
  @ [ "is_string"; "is_int"; "is_integer"; "is_long"; "is_float"; "is_double";
      "is_real"; "is_numeric"; "is_scalar"; "is_bool";
      "ctype_digit"; "ctype_alpha"; "ctype_alnum";
      "preg_match"; "preg_match_all"; "ereg"; "eregi";
      "strnatcmp"; "strcmp"; "strncmp"; "strncasecmp"; "strcasecmp";
      "in_array"; "array_key_exists"; "checkdate"; "filter_var" ]

let is_guard_fn name = List.mem (normalize_fn name) guard_fns

(* ------------------------------------------------------------------ *)
(* Small sorted-id-list helpers (spec sets are tiny).                  *)

let union_ids a b =
  let rec go a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: ta, y :: tb ->
        if x < y then x :: go ta b
        else if y < x then y :: go a tb
        else x :: go ta tb
  in
  go a b

(* [b = []] returns [a] itself: downstream fast paths test physical
   equality against [ctx.all_ids]. *)
let diff_ids a b = if b = [] then a else List.filter (fun x -> not (List.mem x b)) a

(* ------------------------------------------------------------------ *)
(* Analysis context.                                                   *)

type phase =
  | Summaries_only  (** first pass: only collect summaries *)
  | Full  (** second pass: emit real candidates too *)

type ctx = {
  specs : Cat.spec array;
  all_ids : int list;  (** [0 .. nspecs-1] *)
  lookup : Lookup.t;
  summaries : Summary.table;
  phase : phase;
  mutable file : string;
  mutable candidates : (int * Trace.candidate) list;
      (** spec-indexed, newest first *)
  seen : (string, unit) Hashtbl.t;  (** candidate de-duplication *)
  (* function-analysis state *)
  mutable return_taints : Env.taint list;
  mutable param_sinks : (int * Summary.param_sink) list;
  mutable current_fn : string option;
  mutable live : int list;
      (** specs still iterating in the innermost loop fixpoint; a spec
          that already stabilized must not record anything more, or the
          fused result would drift from its single-spec run *)
}

let make_ctx ~specs ~lookup ~phase ~summaries =
  let all_ids = List.init (Array.length specs) Fun.id in
  {
    specs;
    all_ids;
    lookup;
    summaries;
    phase;
    file = "<none>";
    candidates = [];
    seen = Hashtbl.create 64;
    return_taints = [];
    param_sinks = [];
    current_fn = None;
    live = all_ids;
  }

let is_live ctx id = ctx.live == ctx.all_ids || List.mem id ctx.live

let render_expr e =
  let s = Printer.expr_to_string e in
  if String.length s > 120 then String.sub s 0 117 ^ "..." else s

(* ------------------------------------------------------------------ *)
(* Candidate emission.                                                 *)

(* The de-duplication key of one (spec, sink, sources) emission.  The
   spec id (not the class acronym) keys the spec so two specs sharing a
   class de-duplicate independently, like their single-spec runs
   would. *)
let candidate_key ~id ~file ~sink_name ~(loc : Loc.t) ~sources =
  Printf.sprintf "%s|%s|%d:%d|#%d|%s" file sink_name loc.Loc.line loc.Loc.col
    id
    (String.concat "," sources)

let indexed_key (id, (c : Trace.candidate)) =
  candidate_key ~id ~file:c.Trace.file ~sink_name:c.Trace.sink_name
    ~loc:c.Trace.sink_loc
    ~sources:(List.map (fun (o : Trace.origin) -> o.Trace.source) c.Trace.origins)

(* Emit for one spec; [tainted] : (argument position * origin) list,
   every origin being that spec's component. *)
let emit_one ctx ~id ~sink_name ~loc ~args ~tainted =
  match tainted with
  | [] -> ()
  | _ when not (is_live ctx id) -> ()
  | _ ->
      let real, params =
        List.partition
          (fun (_, (o : Trace.origin)) ->
            Trace.param_index_of_source o.Trace.source = None)
          tainted
      in
      (* taint coming from an enclosing function's parameter: record it in
         the summary being built *)
      List.iter
        (fun (_, (o : Trace.origin)) ->
          match Trace.param_index_of_source o.Trace.source with
          | Some i ->
              ctx.param_sinks <-
                ( id,
                  { Summary.ps_index = i; ps_sink_name = sink_name;
                    ps_sink_loc = loc; ps_through = o.Trace.through } )
                :: ctx.param_sinks
          | None -> ())
        params;
      if real <> [] && ctx.phase = Full then begin
        (* the sink's own file, not the analyzed unit: included files keep
           their identity when spliced into an includer *)
        let file = if loc.Loc.file = "<none>" then ctx.file else loc.Loc.file in
        let key =
          candidate_key ~id ~file ~sink_name ~loc
            ~sources:(List.map (fun (_, o) -> o.Trace.source) real)
        in
        if not (Hashtbl.mem ctx.seen key) then begin
          Hashtbl.add ctx.seen key ();
          ctx.candidates <-
            ( id,
              {
                Trace.vclass = ctx.specs.(id).Cat.vclass;
                file;
                sink_name;
                sink_loc = loc;
                origins = List.map snd real;
                sink_args = args;
                tainted_positions = List.map fst real;
              } )
            :: ctx.candidates
        end
      end

(* Emit for one spec from vector taints: extract that spec's component
   of every argument. *)
let emit_spec ctx ~id ~sink_name ~loc ~args ~taints =
  let tainted =
    List.filter_map
      (fun (i, t) -> Option.map (fun o -> (i, o)) (Env.find t id))
      taints
  in
  emit_one ctx ~id ~sink_name ~loc ~args ~tainted

(* ------------------------------------------------------------------ *)
(* Guard refinement.                                                   *)

(* Variables (and rendered superglobal accesses) validated by a guard
   call's arguments. *)
let guarded_keys_of_args (args : Ast.arg list) : string list =
  List.concat_map
    (fun (a : Ast.arg) ->
      let acc = ref [] in
      Visitor.fold_expr
        (fun () (e : Ast.expr) ->
          match e.e with
          | Ast.Var v when not (Ast.is_superglobal v) -> acc := v :: !acc
          | Ast.Index ({ e = Ast.Var sg; _ }, _) when Ast.is_superglobal sg ->
              acc := ("@sg:" ^ render_expr e) :: !acc
          | _ -> ())
        () a.a_expr;
      !acc)
    args

let add_guard_to ctx env keys gname =
  List.fold_left
    (fun env k ->
      if String.length k > 4 && String.sub k 0 4 = "@sg:" then
        (* superglobal guard: remember it under a pseudo-variable, for
           every spec (superglobal membership does not matter here — the
           pseudo-var is only read back by the specs it is one for) *)
        let prev = Env.get env k in
        let v =
          List.map
            (fun id ->
              ( id,
                match Env.find prev id with
                | Some o -> Trace.add_guard o gname
                | None ->
                    Trace.add_guard
                      (Trace.origin ~source:k ~source_loc:Loc.dummy)
                      gname ))
            ctx.all_ids
        in
        Env.set env k v
      else
        match Env.get env k with
        | [] -> env
        | t ->
            Env.set env k
              (Env.map_origins (fun o -> Trace.add_guard o gname) t))
    env keys

(* guard calls appearing syntactically inside an expression *)
let rec guard_calls_in (e : Ast.expr) : (string * string list) list =
  Visitor.fold_expr
    (fun acc (e : Ast.expr) ->
      match e.e with
      | Ast.Call (Ast.F_ident f, args) when is_guard_fn f ->
          (normalize_fn f, guarded_keys_of_args args) :: acc
      | Ast.Isset es ->
          ("isset", guarded_keys_of_args (List.map (fun e -> { Ast.a_expr = e; a_spread = false }) es))
          :: acc
      | Ast.Empty e1 ->
          ("empty", guarded_keys_of_args [ { Ast.a_expr = e1; a_spread = false } ]) :: acc
      | _ -> acc)
    [] e

and refine_true ctx env (cond : Ast.expr) =
  match cond.e with
  | Ast.Binop (Ast.Bool_and, a, b) -> refine_true ctx (refine_true ctx env a) b
  | Ast.Binop (Ast.Bool_or, a, b) ->
      (* symptom semantics, not dominance: a validation on either side of
         a disjunction still counts as validation evidence (Table I) *)
      refine_true ctx (refine_true ctx env a) b
  | Ast.Unop (Ast.Not, a) -> refine_false ctx env a
  | Ast.Call (Ast.F_ident f, args) when is_guard_fn f ->
      add_guard_to ctx env (guarded_keys_of_args args) (normalize_fn f)
  | Ast.Isset es ->
      add_guard_to ctx env
        (guarded_keys_of_args (List.map (fun e -> { Ast.a_expr = e; a_spread = false }) es))
        "isset"
  | Ast.Binop ((Ast.Eq_eq | Ast.Identical | Ast.Neq | Ast.Not_identical | Ast.Gt | Ast.Ge | Ast.Lt | Ast.Le), _, _)
    ->
      (* comparison over a guard's result, e.g. strcmp($x,...) == 0 *)
      List.fold_left
        (fun env (g, keys) -> add_guard_to ctx env keys g)
        env (guard_calls_in cond)
  | _ -> env

and refine_false ctx env (cond : Ast.expr) =
  match cond.e with
  | Ast.Unop (Ast.Not, a) -> refine_true ctx env a
  | Ast.Binop (Ast.Bool_or, a, b) -> refine_false ctx (refine_false ctx env a) b
  | Ast.Call (Ast.F_ident f, args)
    when List.mem (normalize_fn f) set_check_fns ->
      (* `if (empty($x)) ... else <here $x is set>` *)
      add_guard_to ctx env (guarded_keys_of_args args) (normalize_fn f)
  | Ast.Empty e1 ->
      add_guard_to ctx env
        (guarded_keys_of_args [ { Ast.a_expr = e1; a_spread = false } ])
        "empty"
  | Ast.Binop ((Ast.Eq_eq | Ast.Identical | Ast.Neq | Ast.Not_identical), _, _) ->
      List.fold_left
        (fun env (g, keys) -> add_guard_to ctx env keys g)
        env (guard_calls_in cond)
  | _ -> env

(* ------------------------------------------------------------------ *)
(* Expression evaluation.                                              *)

let cast_name = function
  | Ast.C_int -> "(int)"
  | Ast.C_float -> "(float)"
  | Ast.C_string -> "(string)"
  | Ast.C_bool -> "(bool)"
  | Ast.C_array -> "(array)"
  | Ast.C_object -> "(object)"

(* Syntactic literal/dynamic structure of an expression, recorded on
   origins so the SQL-symptom collector can analyse queries assembled in
   variables before the sink. *)
let rec flatten_parts (e : Ast.expr) : Trace.qpart list =
  match e.e with
  | Ast.String s -> [ Trace.Qlit s ]
  | Ast.Int n -> [ Trace.Qlit (string_of_int n) ]
  | Ast.Interp parts ->
      List.concat_map
        (function
          | Ast.Ip_str s -> [ Trace.Qlit s ]
          | Ast.Ip_expr e1 -> flatten_parts e1)
        parts
  | Ast.Binop (Ast.Concat, l, r) -> flatten_parts l @ flatten_parts r
  | Ast.Ternary (_, Some t, f) -> flatten_parts t @ flatten_parts f
  | _ -> [ Trace.Qdyn ]

(* Split a printf-style format string into literal segments and dynamic
   holes, mirroring what an interpolated string would record. *)
let split_format (fmt : string) : Trace.qpart list =
  let n = String.length fmt in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Trace.Qlit (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  let i = ref 0 in
  while !i < n do
    if fmt.[!i] = '%' && !i + 1 < n then begin
      if fmt.[!i + 1] = '%' then begin
        Buffer.add_char buf '%';
        i := !i + 2
      end
      else begin
        flush ();
        out := Trace.Qdyn :: !out;
        (* skip flags/width up to the conversion letter *)
        incr i;
        while
          !i < n
          && not
               (match fmt.[!i] with
               | 'a' .. 'z' | 'A' .. 'Z' -> true
               | _ -> false)
        do
          incr i
        done;
        if !i < n then incr i
      end
    end
    else begin
      Buffer.add_char buf fmt.[!i];
      incr i
    end
  done;
  flush ();
  List.rev !out

(* Does a statement list end in a control-flow exit? Used for the
   `if (!valid($x)) die();` refinement. *)
let rec terminates (stmts : Ast.stmt list) =
  match List.rev stmts with
  | [] -> false
  | last :: _ -> (
      match last.Ast.s with
      | Ast.Return _ | Ast.Throw _ | Ast.Break _ | Ast.Continue _ -> true
      | Ast.Expr_stmt { e = Ast.Exit _; _ } -> true
      | Ast.If (branches, Some els) ->
          List.for_all (fun (_, b) -> terminates b) branches && terminates els
      | Ast.Block b -> terminates b
      | _ -> false)

let terminates_with_exit (stmts : Ast.stmt list) =
  match List.rev stmts with
  | { Ast.s = Ast.Expr_stmt { e = Ast.Exit _; _ }; _ } :: _ -> true
  | _ -> false

(* Scalar operand-join of two origins (one spec's components). *)
let join_origin_operands (acc : Trace.origin option) (o : Trace.origin) =
  match acc with
  | None -> Some o
  | Some o1 ->
      Some
        {
          o1 with
          Trace.through = Trace.union_names o1.Trace.through o.Trace.through;
          Trace.guards = Trace.union_names o1.Trace.guards o.Trace.guards;
        }

let rec eval ctx env (e : Ast.expr) : Env.taint * Env.t =
  match e.e with
  | Ast.Int _ | Ast.Float _ | Ast.String _ | Ast.Constant _ | Ast.Class_const _
  | Ast.Static_prop _ ->
      (Env.clean, env)
  | Ast.Interp parts ->
      let t, env =
        List.fold_left
          (fun (t, env) part ->
            match part with
            | Ast.Ip_str _ -> (t, env)
            | Ast.Ip_expr pe ->
                let t2, env = eval ctx env pe in
                (Env.join_operands t t2, env))
          (Env.clean, env) parts
      in
      (* interpolation of tainted data into a literal is an implicit
         string concatenation (Table I symptom) *)
      let t =
        match parts with
        | _ :: _ :: _ ->
            Env.map_origins (fun o -> Trace.add_through o "concat_op") t
        | _ -> t
      in
      (t, env)
  | Ast.Backtick parts ->
      (* the shell-execution operator: evaluates like an interpolated
         string and is an OS-command-injection sink *)
      let t, env =
        List.fold_left
          (fun (t, env) part ->
            match part with
            | Ast.Ip_str _ -> (t, env)
            | Ast.Ip_expr pe ->
                let t2, env = eval ctx env pe in
                (Env.join_operands t t2, env))
          (Env.clean, env) parts
      in
      check_fn_sink ctx ~name:"shell_exec" ~loc:e.eloc ~args:[ e ] ~taints:[ (0, t) ];
      (Env.clean, env)
  | Ast.Var v -> (
      match Lookup.superglobal_ids ctx.lookup v with
      | [] -> (Env.get env v, env)
      | sg_ids ->
          (* entry point for the specs listing [$v] as superglobal; any
             other spec reads the plain variable *)
          let o = Trace.origin ~source:("$" ^ v) ~source_loc:e.eloc in
          let rest = Env.without (Env.get env v) sg_ids in
          (Env.overlay (Env.of_origin ~ids:sg_ids o) rest, env))
  | Ast.Var_var inner ->
      let _, env = eval ctx env inner in
      (Env.clean, env)
  | Ast.Index ({ e = Ast.Var sg; _ }, idx)
    when Lookup.superglobal_ids ctx.lookup sg <> [] ->
      let sg_ids = Lookup.superglobal_ids ctx.lookup sg in
      (* specs for which [sg] is no superglobal follow the generic Index
         rule: taint of the base variable, read before the index (the
         base evaluates first there) *)
      let rest = Env.without (Env.get env sg) sg_ids in
      let env =
        match idx with
        | Some i ->
            let _, env = eval ctx env i in
            env
        | None -> env
      in
      let rendered = render_expr e in
      (* pick up guards previously recorded for this superglobal access *)
      let base = Trace.origin ~source:rendered ~source_loc:e.eloc in
      let prev = Env.get env ("@sg:" ^ rendered) in
      let sg_taint =
        List.map
          (fun id ->
            ( id,
              match Env.find prev id with
              | Some p -> { base with Trace.guards = p.Trace.guards }
              | None -> base ))
          sg_ids
      in
      (Env.overlay sg_taint rest, env)
  | Ast.Index (base, idx) ->
      let t, env = eval ctx env base in
      let env =
        match idx with
        | Some i ->
            let _, env = eval ctx env i in
            env
        | None -> env
      in
      (t, env)
  | Ast.Prop (base, _) -> eval ctx env base
  | Ast.Call (callee, args) -> eval_call ctx env e.eloc callee args
  | Ast.New (cname, args) ->
      let taints, env = eval_args ctx env args in
      let t =
        List.fold_left Env.join_operands Env.clean (List.map snd taints)
      in
      let t =
        Env.map_origins
          (fun o -> Trace.add_through o ("new " ^ normalize_fn cname))
          t
      in
      (t, env)
  | Ast.Clone e1 -> eval ctx env e1
  | Ast.Binop (op, l, r) ->
      let tl, env = eval ctx env l in
      let tr, env = eval ctx env r in
      let t = Env.join_operands tl tr in
      let t =
        match op with
        | Ast.Concat ->
            Env.map_origins (fun o -> Trace.add_through o "concat_op") t
        | _ -> t
      in
      (t, env)
  | Ast.Unop (_, e1) -> eval ctx env e1
  | Ast.Incdec (_, e1) -> eval ctx env e1
  | Ast.Assign (op, lhs, rhs) -> eval_assign ctx env e.eloc op lhs rhs
  | Ast.Assign_ref (lhs, rhs) -> eval_assign ctx env e.eloc Ast.A_eq lhs rhs
  | Ast.Ternary (c, t_br, f_br) ->
      let _, env = eval ctx env c in
      let env_t = refine_true ctx env c and env_f = refine_false ctx env c in
      let tt, env_t =
        match t_br with
        | Some t_br -> eval ctx env_t t_br
        | None ->
            (* `c ?: f` : value of c itself *)
            eval ctx env_t c
      in
      let tf, env_f = eval ctx env_f f_br in
      (Env.join tt tf, Env.merge env_t env_f)
  | Ast.Cast (c, e1) ->
      let t, env = eval ctx env e1 in
      (Env.map_origins (fun o -> Trace.add_through o (cast_name c)) t, env)
  | Ast.Isset es ->
      let env = List.fold_left (fun env e1 -> snd (eval ctx env e1)) env es in
      (Env.clean, env)
  | Ast.Empty e1 ->
      let _, env = eval ctx env e1 in
      (Env.clean, env)
  | Ast.Exit arg ->
      let env =
        match arg with
        | Some a ->
            let t, env = eval ctx env a in
            check_fn_sink ctx ~name:"exit" ~loc:e.eloc ~args:[ a ] ~taints:[ (0, t) ];
            env
        | None -> env
      in
      (Env.clean, env)
  | Ast.Print e1 ->
      let t, env = eval ctx env e1 in
      List.iter
        (fun id ->
          emit_spec ctx ~id ~sink_name:"print" ~loc:e.eloc ~args:[ e1 ]
            ~taints:[ (0, t) ])
        (Lookup.echo_ids ctx.lookup);
      (Env.clean, env)
  | Ast.Include (_, e1) ->
      let t, env = eval ctx env e1 in
      List.iter
        (fun id ->
          emit_spec ctx ~id ~sink_name:"include" ~loc:e.eloc ~args:[ e1 ]
            ~taints:[ (0, t) ])
        (Lookup.include_ids ctx.lookup);
      (Env.clean, env)
  | Ast.List _ -> (Env.clean, env)
  | Ast.Array_lit items ->
      List.fold_left
        (fun (t, env) (it : Ast.array_item) ->
          let env =
            match it.ai_key with
            | Some k -> snd (eval ctx env k)
            | None -> env
          in
          let tv, env = eval ctx env it.ai_value in
          (Env.join_operands t tv, env))
        (Env.clean, env) items
  | Ast.Closure c ->
      (* analyze the closure body in a scope seeded with captured vars *)
      let inner_env =
        List.fold_left
          (fun acc (_, v) -> Env.set acc v (Env.get env v))
          Env.empty c.cl_uses
      in
      let saved = ctx.return_taints in
      ctx.return_taints <- [];
      let _ = exec_stmts ctx inner_env c.cl_body in
      ctx.return_taints <- saved;
      (Env.clean, env)

and check_fn_sink ?only ctx ~name ~loc ~args ~taints =
  List.iter
    (fun (id, _cls, danger_args) ->
      let allowed =
        match only with None -> true | Some ids -> List.mem id ids
      in
      if allowed then
        let relevant =
          match danger_args with
          | [] -> taints
          | positions -> List.filter (fun (i, _) -> List.mem i positions) taints
        in
        emit_spec ctx ~id ~sink_name:(normalize_fn name) ~loc ~args
          ~taints:relevant)
    (Lookup.sink_fn_entries ctx.lookup name)

and eval_args ctx env (args : Ast.arg list) : (int * Env.taint) list * Env.t =
  let _, taints, env =
    List.fold_left
      (fun (i, acc, env) (a : Ast.arg) ->
        let t, env = eval ctx env a.a_expr in
        (i + 1, (i, t) :: acc, env))
      (0, [], env) args
  in
  (List.rev taints, env)

(* Operand-join of all arguments, restricted to [ids], with a [through]
   marker — the propagation default for unknown calls. *)
and join_all ctx ~through ~ids taints =
  let t = List.fold_left Env.join_operands Env.clean (List.map snd taints) in
  let t = if ids == ctx.all_ids then t else Env.restrict t ids in
  Env.map_origins (fun o -> Trace.add_through o through) t

(* A method/function call with no catalog entry for [ids]: either a
   known user function (summary) or the propagation default. *)
and summary_or_join ctx env loc name ~through taints arg_exprs ~ids =
  if ids = [] then Env.clean
  else
    match Summary.find ctx.summaries name with
    | Some fs -> apply_summary ctx env loc fs taints arg_exprs ~ids
    | None -> join_all ctx ~through ~ids taints

and eval_call ctx env loc (callee : Ast.callee) (args : Ast.arg list) :
    Env.taint * Env.t =
  let taints, env = eval_args ctx env args in
  let arg_exprs = List.map (fun (a : Ast.arg) -> a.a_expr) args in
  match callee with
  | Ast.F_method ({ e = Ast.Var obj; _ }, Ast.Mem_ident m)
    when Lookup.sanitizer_method_ids ctx.lookup obj m <> []
         || Lookup.sanitizer_method_ids ctx.lookup "*" m <> []
         || Lookup.sink_method_ids ctx.lookup obj m <> []
         || Lookup.sink_method_ids ctx.lookup "*" m <> [] ->
      let san =
        union_ids
          (Lookup.sanitizer_method_ids ctx.lookup obj m)
          (Lookup.sanitizer_method_ids ctx.lookup "*" m)
      in
      let snk =
        diff_ids
          (union_ids
             (Lookup.sink_method_ids ctx.lookup obj m)
             (Lookup.sink_method_ids ctx.lookup "*" m))
          san
      in
      let rest = diff_ids ctx.all_ids (union_ids san snk) in
      if snk <> [] then begin
        let name = normalize_fn obj ^ "->" ^ normalize_fn m in
        List.iter
          (fun id -> emit_spec ctx ~id ~sink_name:name ~loc ~args:arg_exprs ~taints)
          snk
      end;
      (* sanitizer and sink specs see a clean result; the rest treat the
         call as a possible user method *)
      ( summary_or_join ctx env loc m ~through:(normalize_fn m) taints arg_exprs
          ~ids:rest,
        env )
  | Ast.F_method (_, Ast.Mem_ident m) ->
      ( summary_or_join ctx env loc m ~through:(normalize_fn m) taints arg_exprs
          ~ids:ctx.all_ids,
        env )
  | Ast.F_method (_, Ast.Mem_expr _) | Ast.F_var _ ->
      (join_all ctx ~through:"<dynamic>" ~ids:ctx.all_ids taints, env)
  | Ast.F_static (c, m) ->
      ( summary_or_join ctx env loc m
          ~through:(normalize_fn c ^ "::" ^ normalize_fn m)
          taints arg_exprs ~ids:ctx.all_ids,
        env )
  | Ast.F_ident f ->
      let lf = normalize_fn f in
      let san = Lookup.sanitizer_fn_ids ctx.lookup lf in
      let src = diff_ids (Lookup.source_fn_ids ctx.lookup lf) san in
      let rest = diff_ids ctx.all_ids (union_ids san src) in
      let src_taint =
        match src with
        | [] -> Env.clean
        | _ -> Env.of_origin ~ids:src (Trace.origin ~source:lf ~source_loc:loc)
      in
      let rest_taint =
        if rest = [] then Env.clean
        else if lf = "sprintf" || lf = "vsprintf" then begin
          (* format-string building: taint flows from the arguments into
             the result, and the format literal gives the query structure *)
          match join_all ctx ~through:lf ~ids:rest taints with
          | [] -> Env.clean
          | t ->
              let parts =
                match arg_exprs with
                | { e = Ast.String fmt; _ } :: _ -> split_format fmt
                | _ -> [ Trace.Qdyn ]
              in
              Env.map_origins (fun o -> Trace.with_parts o parts) t
        end
        else begin
          (* sink check, then propagation *)
          let only =
            if lf = "preg_replace" then begin
              (* only the /e modifier makes preg_replace a PHP-code sink *)
              let dangerous =
                match arg_exprs with
                | { e = Ast.String pat; _ } :: _ ->
                    String.length pat > 0
                    &&
                    let last = pat.[String.length pat - 1] in
                    last = 'e'
                | _ -> true (* dynamic pattern: conservatively dangerous *)
              in
              if dangerous then rest
              else
                List.filter
                  (fun id -> ctx.specs.(id).Cat.vclass <> VC.Phpci)
                  rest
            end
            else rest
          in
          check_fn_sink ctx ~only ~name:lf ~loc ~args:arg_exprs ~taints;
          match Summary.find ctx.summaries lf with
          | Some fs -> apply_summary ctx env loc fs taints arg_exprs ~ids:rest
          | None ->
              if is_guard_fn lf || List.mem lf return_clean_fns then Env.clean
              else join_all ctx ~through:lf ~ids:rest taints
        end
      in
      (Env.overlay src_taint rest_taint, env)

and apply_summary ctx _env loc (fs : Summary.fused) taints arg_exprs ~ids :
    Env.taint =
  List.filter_map
    (fun id ->
      let s = Summary.for_spec fs id in
      (* interprocedural sinks: a tainted argument reaching a sink inside *)
      List.iter
        (fun (ps : Summary.param_sink) ->
          match List.assoc_opt ps.Summary.ps_index taints with
          | Some tv -> (
              match Env.find tv id with
              | Some o ->
                  let o =
                    List.fold_left Trace.add_through o ps.Summary.ps_through
                  in
                  let o =
                    Trace.add_step o
                      {
                        Trace.step_loc = loc;
                        step_desc =
                          Printf.sprintf "passed to %s()" s.Summary.fn_name;
                      }
                  in
                  emit_one ctx ~id ~sink_name:ps.Summary.ps_sink_name
                    ~loc:ps.Summary.ps_sink_loc ~args:arg_exprs
                    ~tainted:[ (ps.Summary.ps_index, o) ]
              | None -> ())
          | None -> ())
        s.Summary.param_sinks;
      (* return taint *)
      let ret =
        List.fold_left
          (fun acc (i, tv) ->
            match (Env.find tv id, Summary.find_param_flow s i) with
            | Some o, Some pf ->
                let o = List.fold_left Trace.add_through o pf.Summary.pf_through in
                let o = List.fold_left Trace.add_guard o pf.Summary.pf_guards in
                let o = Trace.add_through o s.Summary.fn_name in
                join_origin_operands acc o
            | _ -> acc)
          None taints
      in
      let ret =
        match ret with
        | None ->
            Option.map
              (fun (o : Trace.origin) -> { o with Trace.source_loc = loc })
              s.Summary.returns_tainted
        | some -> some
      in
      Option.map (fun o -> (id, o)) ret)
    ids

(* ------------------------------------------------------------------ *)
(* Assignment.                                                         *)

and eval_assign ctx env loc op (lhs : Ast.expr) (rhs : Ast.expr) :
    Env.taint * Env.t =
  let t_rhs, env = eval ctx env rhs in
  let t_prev, env =
    match op with
    | Ast.A_eq -> (Env.clean, env)
    | _ -> eval ctx env lhs
  in
  let t = Env.join_operands t_prev t_rhs in
  let t =
    match op with
    | Ast.A_concat ->
        Env.map_origins (fun o -> Trace.add_through o "concat_op") t
    | _ -> t
  in
  let t =
    match t with
    | [] -> Env.clean
    | _ ->
        let step =
          { Trace.step_loc = loc;
            step_desc = render_expr lhs ^ " = " ^ render_expr rhs }
        in
        let rhs_parts = flatten_parts rhs in
        Env.map_origins
          (fun o ->
            let o = Trace.add_step o step in
            (* remember the string structure being built; `.=` extends
               it; an opaque right-hand side (e.g. a sprintf call that
               already recorded its format) keeps the structure gathered
               so far *)
            let parts =
              match op with
              | Ast.A_concat -> o.Trace.parts @ rhs_parts
              | _ -> (
                  match rhs_parts with
                  | [ Trace.Qdyn ] when o.Trace.parts <> [] -> o.Trace.parts
                  | p -> p)
            in
            Trace.with_parts o parts)
          t
  in
  let env = assign_to ctx env lhs t in
  (t, env)

and assign_to ctx env (lhs : Ast.expr) (t : Env.taint) : Env.t =
  match lhs.e with
  | Ast.Var v -> (
      match Lookup.superglobal_ids ctx.lookup v with
      | [] -> Env.set env v t
      | sg_ids ->
          (* specs treating [$v] as a superglobal never store to it; the
             others do *)
          let kept = Env.restrict (Env.get env v) sg_ids in
          Env.set env v (Env.overlay kept (Env.without t sg_ids)))
  | Ast.Index (base, _) | Ast.Prop (base, _) -> (
      (* coarse: the whole container becomes (partially) tainted *)
      match Ast.base_variable base with
      | Some v ->
          let merged = Env.join_operands (Env.get env v) t in
          Env.set env v merged
      | None -> env)
  | Ast.List es ->
      List.fold_left
        (fun env e1 ->
          match e1 with Some e1 -> assign_to ctx env e1 t | None -> env)
        env es
  | Ast.Var_var _ | Ast.Static_prop _ -> env
  | _ -> env

(* ------------------------------------------------------------------ *)
(* Statements.                                                         *)

and exec_stmts ctx env (stmts : Ast.stmt list) : Env.t =
  List.fold_left (exec_stmt ctx) env stmts

and exec_stmt ctx env (s : Ast.stmt) : Env.t =
  match s.s with
  | Ast.Expr_stmt e -> snd (eval ctx env e)
  | Ast.Echo es ->
      let echo_ids = Lookup.echo_ids ctx.lookup in
      List.fold_left
        (fun env e ->
          let t, env = eval ctx env e in
          List.iter
            (fun id ->
              emit_spec ctx ~id ~sink_name:"echo" ~loc:s.sloc ~args:[ e ]
                ~taints:[ (0, t) ])
            echo_ids;
          env)
        env es
  | Ast.If (branches, els) -> exec_if ctx env branches els
  | Ast.While (cond, body) ->
      let _, env0 = eval ctx env cond in
      loop_fixpoint ctx env0 ~enter:(fun e -> refine_true ctx e cond) ~body
  | Ast.Do_while (body, cond) ->
      let env = exec_stmts ctx env body in
      let _, env = eval ctx env cond in
      loop_fixpoint ctx env ~enter:(fun e -> refine_true ctx e cond) ~body
  | Ast.For (init, conds, steps, body) ->
      let env = List.fold_left (fun env e -> snd (eval ctx env e)) env init in
      let env = List.fold_left (fun env e -> snd (eval ctx env e)) env conds in
      let body' = body in
      let env =
        loop_fixpoint ctx env ~enter:(fun e -> e)
          ~body:body'
      in
      List.fold_left (fun env e -> snd (eval ctx env e)) env steps
  | Ast.Foreach (subject, binding, body) ->
      let t_subj, env = eval ctx env subject in
      let t_subj =
        match t_subj with
        | [] -> Env.clean
        | _ ->
            let step =
              { Trace.step_loc = s.sloc;
                step_desc = "foreach over " ^ render_expr subject }
            in
            Env.map_origins (fun o -> Trace.add_step o step) t_subj
      in
      let env = assign_to ctx env binding.fe_value t_subj in
      let env =
        match binding.fe_key with
        | Some k -> assign_to ctx env k t_subj
        | None -> env
      in
      loop_fixpoint ctx env ~enter:(fun e -> e) ~body
  | Ast.Switch (subject, cases) ->
      let _, env = eval ctx env subject in
      let case_envs =
        List.map
          (fun case ->
            match case with
            | Ast.Case (e, body) ->
                let _, env' = eval ctx env e in
                exec_stmts ctx env' body
            | Ast.Default body -> exec_stmts ctx env body)
          cases
      in
      List.fold_left Env.merge env case_envs
  | Ast.Return e -> (
      match e with
      | Some e ->
          let t, env = eval ctx env e in
          (* record only the components of specs still iterating: a spec
             whose loop already stabilized stopped recording returns in
             its single-spec run too *)
          let t_rec =
            if ctx.live == ctx.all_ids then t else Env.restrict t ctx.live
          in
          ctx.return_taints <- t_rec :: ctx.return_taints;
          env
      | None -> env)
  | Ast.Break _ | Ast.Continue _ | Ast.Inline_html _ | Ast.Nop | Ast.Const_def _ -> env
  | Ast.Global vs ->
      (* conservative: global state is unknown, treat as clean *)
      List.fold_left (fun env v -> Env.set env v Env.clean) env vs
  | Ast.Static_vars vs ->
      List.fold_left
        (fun env (v, init) ->
          match init with
          | Some e ->
              let t, env = eval ctx env e in
              Env.set env v t
          | None -> Env.set env v Env.clean)
        env vs
  | Ast.Unset es ->
      List.fold_left
        (fun env e ->
          match e.Ast.e with Ast.Var v -> Env.remove env v | _ -> env)
        env es
  | Ast.Throw e -> snd (eval ctx env e)
  | Ast.Try (body, catches, fin) ->
      let env_body = exec_stmts ctx env body in
      let env_catches =
        List.map
          (fun (c : Ast.catch) ->
            let env =
              match c.c_var with
              | Some v -> Env.set env v Env.clean
              | None -> env
            in
            exec_stmts ctx env c.c_body)
          catches
      in
      let env = List.fold_left Env.merge env_body env_catches in
      (match fin with Some b -> exec_stmts ctx env b | None -> env)
  | Ast.Func_def _ | Ast.Class_def _ ->
      (* bodies are analyzed separately, as their own scopes *)
      env
  | Ast.Block body -> exec_stmts ctx env body

and exec_if ctx env branches els : Env.t =
  (* evaluate conditions for side effects first *)
  let env =
    List.fold_left (fun env (c, _) -> snd (eval ctx env c)) env branches
  in
  let branch_envs =
    List.map
      (fun (cond, body) ->
        let env_in = refine_true ctx env cond in
        let env_out = exec_stmts ctx env_in body in
        (cond, body, env_out))
      branches
  in
  let fallthrough_env =
    (* the path where every condition was false; a branch that rejects bad
       input with exit/die additionally marks the flow with the
       "error and exit" symptom *)
    List.fold_left
      (fun e (cond, body) ->
        let e = refine_false ctx e cond in
        if terminates_with_exit body then
          List.fold_left
            (fun e (_, keys) -> add_guard_to ctx e keys "exit")
            e (guard_calls_in cond)
        else e)
      env branches
  in
  let else_env =
    match els with
    | Some body -> Some (exec_stmts ctx fallthrough_env body)
    | None -> None
  in
  (* branches that exit don't contribute to the merged state *)
  let live =
    List.filter_map
      (fun (_, body, env_out) -> if terminates body then None else Some env_out)
      branch_envs
  in
  let live =
    match els with
    | Some body -> (
        match else_env with
        | Some e when not (terminates body) -> e :: live
        | _ -> live)
    | None -> fallthrough_env :: live
  in
  match live with
  | [] -> fallthrough_env
  | first :: rest -> List.fold_left Env.merge first rest

and loop_fixpoint ctx env ~enter ~body : Env.t =
  (* Per-spec fixpoint: each iteration runs the body once for everyone,
     but a spec whose environment stabilized is retired — it stops
     recording (returns, sinks) and its stabilization-time environment
     is restored at the end — so every spec sees exactly the iterations
     its own single-spec run would have executed. *)
  let saved = ctx.live in
  let rec iterate env frozen live n =
    if live = [] || n = 0 then (env, frozen)
    else begin
      ctx.live <- live;
      let env' = Env.merge env (exec_stmts ctx (enter env) body) in
      let stable, unstable =
        List.partition (fun id -> Env.equal_shallow_for id env env') live
      in
      let frozen = List.map (fun id -> (id, env')) stable @ frozen in
      if unstable = [] then (env', frozen)
      else iterate env' frozen unstable (n - 1)
    end
  in
  let env_final, frozen = iterate env [] saved 3 in
  ctx.live <- saved;
  (* a spec frozen at the final environment needs no blending: each
     blend touches only its own component *)
  List.fold_left
    (fun acc (id, e) -> if e == env_final then acc else Env.blend acc ~from:e id)
    env_final frozen

(* ------------------------------------------------------------------ *)
(* Function / scope analysis.                                          *)

let analyze_function ctx (f : Ast.func) : Summary.fused =
  let env =
    List.fold_left
      (fun (i, env) (p : Ast.param) ->
        ( i + 1,
          Env.set env p.p_name
            (Env.of_origin ~ids:ctx.all_ids
               (Trace.origin ~source:(Trace.param_source i) ~source_loc:f.f_loc)) ))
      (0, Env.empty) f.f_params
    |> snd
  in
  ctx.return_taints <- [];
  ctx.param_sinks <- [];
  ctx.current_fn <- Some f.f_name;
  let _ = exec_stmts ctx env f.f_body in
  let fn_name = normalize_fn f.f_name in
  let arity = List.length f.f_params in
  let per_spec =
    List.map
      (fun id ->
        let returns_params =
          List.fold_left
            (fun acc t ->
              match Env.find t id with
              | Some o -> (
                  match Trace.param_index_of_source o.Trace.source with
                  | Some i
                    when not
                           (List.exists
                              (fun pf -> pf.Summary.pf_index = i)
                              acc) ->
                      { Summary.pf_index = i; pf_through = o.Trace.through;
                        pf_guards = o.Trace.guards }
                      :: acc
                  | _ -> acc)
              | None -> acc)
            [] ctx.return_taints
        in
        let returns_tainted =
          List.find_map
            (fun t ->
              match Env.find t id with
              | Some o when Trace.param_index_of_source o.Trace.source = None ->
                  Some o
              | _ -> None)
            ctx.return_taints
        in
        let param_sinks =
          List.rev
            (List.filter_map
               (fun (i, ps) -> if i = id then Some ps else None)
               ctx.param_sinks)
        in
        { Summary.fn_name; arity; returns_params; param_sinks; returns_tainted })
      ctx.all_ids
  in
  ctx.current_fn <- None;
  ctx.param_sinks <- [];
  ctx.return_taints <- [];
  Summary.fused_of_list fn_name arity per_spec

(* ------------------------------------------------------------------ *)
(* Public API.                                                         *)

type file_unit = { path : string; program : Ast.program }

(* Literal include targets: 'config.php' or 'dir/' . 'file.php'. *)
let rec literal_path (e : Ast.expr) : string option =
  match e.e with
  | Ast.String s -> Some s
  | Ast.Binop (Ast.Concat, l, r) -> (
      match (literal_path l, literal_path r) with
      | Some a, Some b -> Some (a ^ b)
      | _ -> None)
  | _ -> None

(** Top-level [include]/[require] of project files is spliced in place,
    the way PHP assembles pages from headers and configuration files —
    taint set up in an included file flows into the includer.  Matching
    is by base name; cycles and deep chains are cut at depth 8. *)
let rec splice_includes ~(units : file_unit list) ~depth ~visited
    (prog : Ast.program) : Ast.program =
  if depth > 8 then prog
  else
    List.concat_map
      (fun (s : Ast.stmt) ->
        match s.Ast.s with
        | Ast.Expr_stmt { e = Ast.Include (_, arg); _ } -> (
            match literal_path arg with
            | Some p -> (
                let base = Filename.basename p in
                match
                  List.find_opt (fun u -> Filename.basename u.path = base) units
                with
                | Some u when not (List.mem u.path visited) ->
                    splice_includes ~units ~depth:(depth + 1)
                      ~visited:(u.path :: visited) u.program
                | _ -> [ s ])
            | None -> [ s ])
        | _ -> [ s ])
      prog

(* ------------------------------------------------------------------ *)
(* Per-file steps.                                                     *)

(* All mutable analysis state of one (spec set, project) run lives in
   this record; nothing is global, so any number of projects can be
   analyzed concurrently (one state each) — the re-entrancy the parallel
   scan engine relies on. *)
type project_state = {
  st_specs : Cat.spec array;
  st_interprocedural : bool;
  st_summaries : Summary.table;
  st_lookup : Lookup.t;
  st_ctx : ctx;
      (** Full-phase context shared by the sequential function sweeps of
          every file, so cross-file candidate de-duplication matches a
          whole-project run *)
}

let project_state ?(interprocedural = true) ~(specs : Cat.spec list) () =
  let specs = Array.of_list specs in
  let summaries = Summary.create_table () in
  let lookup = Lookup.of_specs (Array.to_list specs) in
  {
    st_specs = specs;
    st_interprocedural = interprocedural;
    st_summaries = summaries;
    st_lookup = lookup;
    st_ctx = make_ctx ~specs ~lookup ~phase:Full ~summaries;
  }

(** Summary sweep over one file: each function's summary is registered
    as soon as it is computed, so later functions (and later files) see
    earlier ones. *)
let summarize_file_delta st (u : file_unit) : Summary.fused list =
  Wap_obs.Trace.with_span ~cat:"taint" "summarize_file"
    ~args:[ ("file", u.path) ]
  @@ fun () ->
  let ctx =
    make_ctx ~specs:st.st_specs ~lookup:st.st_lookup ~phase:Summaries_only
      ~summaries:st.st_summaries
  in
  ctx.file <- u.path;
  List.map
    (fun f ->
      let s = analyze_function ctx f in
      Summary.register st.st_summaries s;
      s)
    (Visitor.collect_functions u.program)

let summarize_file st (u : file_unit) : unit =
  ignore (summarize_file_delta st u)

let register_summaries st (fs : Summary.fused list) : unit =
  List.iter (Summary.register st.st_summaries) fs

(** Function-body sweep over one file: returns the candidates found
    inside this file's function bodies (spec-indexed, discovery order)
    and (interprocedurally) refines their summaries now that callees are
    known.  Must be driven sequentially, in file order, on one state:
    the shared context's de-duplication spans files. *)
let analyze_file_functions st (u : file_unit) : (int * Trace.candidate) list =
  Wap_obs.Trace.with_span ~cat:"taint" "analyze_functions"
    ~args:[ ("file", u.path) ]
  @@ fun () ->
  st.st_ctx.file <- u.path;
  let before = st.st_ctx.candidates in
  List.iter
    (fun f ->
      let s = analyze_function st.st_ctx f in
      if st.st_interprocedural then Summary.register st.st_summaries s)
    (Visitor.collect_functions u.program);
  (* this file's delta, oldest first ([candidates] is prepend-only) *)
  let rec delta acc l =
    if l == before then acc
    else match l with x :: tl -> delta (x :: acc) tl | [] -> acc
  in
  delta [] st.st_ctx.candidates

(** Top-level sweep over one file, using the final summaries; literal
    includes of project files are spliced so taint crosses file
    boundaries.  Pure with respect to the state (fresh context per call,
    read-only summary table), so calls for different files may run
    concurrently once the function sweeps are done.  Candidates are
    de-duplicated within the file only; {!finalize} restores the
    cross-file (and cross-pass) de-duplication. *)
let analyze_file_toplevel st ~(units : file_unit list) (u : file_unit) :
    (int * Trace.candidate) list =
  Wap_obs.Trace.with_span ~cat:"taint" "analyze_toplevel"
    ~args:[ ("file", u.path) ]
  @@ fun () ->
  let ctx =
    make_ctx ~specs:st.st_specs ~lookup:st.st_lookup ~phase:Full
      ~summaries:st.st_summaries
  in
  ctx.file <- u.path;
  let program = splice_includes ~units ~depth:0 ~visited:[ u.path ] u.program in
  ignore (exec_stmts ctx Env.empty program);
  List.rev ctx.candidates

(* Base names a file's top-level includes resolve against — the exact
   matching [splice_includes] performs, exposed so an incremental
   caller (the session engine) can compute which files would re-splice
   an edited one.  Only top-level statements count, like the splice. *)
let include_basenames (prog : Ast.program) : string list =
  List.filter_map
    (fun (s : Ast.stmt) ->
      match s.Ast.s with
      | Ast.Expr_stmt { e = Ast.Include (_, arg); _ } ->
          Option.map Filename.basename (literal_path arg)
      | _ -> None)
    prog

(** Cross-file/cross-pass de-duplication sweep (first emission wins,
    exactly like one shared context), then the dead-sink filter:
    candidates whose sink control flow provably never reaches (after an
    unconditional exit/die/return/throw) are not vulnerabilities. *)
let finalize_with ~(is_dead : Loc.t -> bool)
    (cands : (int * Trace.candidate) list) : (int * Trace.candidate) list =
  let seen = Hashtbl.create 64 in
  let deduped =
    List.filter
      (fun ic ->
        let k = indexed_key ic in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      cands
  in
  Wap_obs.Trace.with_span ~cat:"taint" "dead_sink_filter" @@ fun () ->
  List.filter
    (fun (_, (c : Trace.candidate)) -> not (is_dead c.Trace.sink_loc))
    deduped

let finalize ~(units : file_unit list) (cands : (int * Trace.candidate) list) :
    (int * Trace.candidate) list =
  let dead = Wap_flow.Reach.create () in
  List.iter (fun u -> Wap_flow.Reach.add_program dead u.program) units;
  finalize_with ~is_dead:(Wap_flow.Reach.is_dead dead) cands

(* Read-only views of a project state, for the IR path (Wap_ir) that
   replays pass 3 over lowered instruction arrays. *)
let state_specs st = st.st_specs
let state_lookup st = st.st_lookup
let state_summaries st = st.st_summaries

(** Analyze a set of files as one application under all given detector
    specs at once.  Function summaries are shared across the whole set,
    which is how WAP sees applications spread over many included files;
    the result pairs each candidate with the id (list position) of the
    spec that found it, in discovery order.

    [interprocedural:false] disables the summary mechanism (function
    bodies are still scanned for local flows, but taint no longer crosses
    call boundaries) — the ablation of DESIGN.md §6. *)
let analyze_project_indexed ?(interprocedural = true)
    ~(specs : Cat.spec list) (units : file_unit list) :
    (int * Trace.candidate) list =
  let span name f = Wap_obs.Trace.with_span ~cat:"taint" name f in
  let st = project_state ~interprocedural ~specs () in
  (* pass 1: build summaries without emitting candidates *)
  if interprocedural then
    span "pass1.summaries" (fun () -> List.iter (summarize_file st) units);
  (* pass 2: refine summaries now that callees are known, and emit
     candidates found inside function bodies *)
  let pass2 =
    span "pass2.functions" (fun () ->
        List.concat_map (analyze_file_functions st) units)
  in
  (* pass 3: top-level flows, using the final summaries *)
  let pass3 =
    span "pass3.toplevel" (fun () ->
        List.concat_map (analyze_file_toplevel st ~units) units)
  in
  finalize ~units (pass2 @ pass3)

(** Single-spec view: the fused analysis of a one-spec set. *)
let analyze_project ?(interprocedural = true) ~(spec : Cat.spec)
    (units : file_unit list) : Trace.candidate list =
  List.map snd (analyze_project_indexed ~interprocedural ~specs:[ spec ] units)

(** Analyze a single parsed file. *)
let analyze_program ~spec ~file (program : Ast.program) : Trace.candidate list
    =
  analyze_project ~spec [ { path = file; program } ]

(** Run several detector specs over the same project — one fused pass —
    and return the findings grouped by spec, in spec order (the shape a
    sequential run per sub-module configuration, as in Fig. 2, would
    produce). *)
let analyze_with_specs ?(interprocedural = true) ~(specs : Cat.spec list)
    (units : file_unit list) : Trace.candidate list =
  let indexed = analyze_project_indexed ~interprocedural ~specs units in
  List.concat
    (List.mapi
       (fun i _ ->
         List.filter_map (fun (j, c) -> if j = i then Some c else None) indexed)
       specs)
