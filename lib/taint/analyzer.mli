(** The taint analyzer: one fused flow-sensitive pass computing
    candidate vulnerabilities for {e all} active detector specs at
    once.

    Taint is tracked as a per-spec vector ({!Env.taint}): entry points
    mark the components of the specs they feed, each spec's sanitizers
    kill only that spec's component, and a sink emits one candidate per
    spec whose component survives.  Components never interact across
    specs, so the fused run is — component by component — exactly the N
    independent single-spec runs, with the spec-independent work
    (traversal, environment bookkeeping, include splicing) done once. *)

open Wap_php

(** The validation functions recognized as guards (Table I's validation
    category, plus a few common membership checks). *)
val guard_fns : string list

val is_guard_fn : string -> bool

(** {2 Shared primitives}

    The pure, syntactic helpers of the AST walker, exported so the IR
    lowering ({!Wap_ir}) resolves the very same renderings, guard keys
    and structural facts at lowering time.  A private copy in the IR
    would be a drift hazard for the byte-identity contract between the
    two analysis paths ([--no-ir] differential testing). *)

(** Case normalization applied to every function/method name before a
    catalog or summary lookup. *)
val normalize_fn : string -> string

(** [isset]/[empty]/[is_null] — the checks whose negation also counts
    as validation evidence ([if (empty($x)) ... else <$x is set>]). *)
val set_check_fns : string list

(** Builtins whose return value is never attacker-controlled text even
    when their arguments are tainted (query handles, counters, ...). *)
val return_clean_fns : string list

(** Variables (and rendered superglobal accesses, as ["@sg:..."] keys)
    validated by a guard call's arguments. *)
val guarded_keys_of_args : Ast.arg list -> string list

(** Guard calls appearing syntactically inside an expression, as
    [(normalized name, guarded keys)] pairs. *)
val guard_calls_in : Ast.expr -> (string * string list) list

(** Syntactic literal/dynamic structure of an expression ([qpart]s). *)
val flatten_parts : Ast.expr -> Trace.qpart list

(** printf-style format string split into literal segments and holes. *)
val split_format : string -> Trace.qpart list

(** Does a statement list end in a control-flow exit? *)
val terminates : Ast.stmt list -> bool

(** Does a statement list end specifically in [exit]/[die]? *)
val terminates_with_exit : Ast.stmt list -> bool

(** Rendering of a cast operator for [through] evidence, e.g. ["(int)"]. *)
val cast_name : Ast.cast -> string

(** Truncated source rendering used in steps and source names. *)
val render_expr : Ast.expr -> string

(** De-duplication key of one (spec, sink, sources) emission. *)
val candidate_key :
  id:int -> file:string -> sink_name:string -> loc:Loc.t ->
  sources:string list -> string

(** Scalar operand-join of two origins (one spec's components). *)
val join_origin_operands :
  Trace.origin option -> Trace.origin -> Trace.origin option

(** One parsed source file of an application. *)
type file_unit = { path : string; program : Ast.program }

(** Top-level [include]/[require] of project files (matched by base
    name, literal paths only) spliced in place, so taint set up in an
    included file flows into the includer.  Cycles and chains deeper
    than 8 are cut. *)
val splice_includes :
  units:file_unit list -> depth:int -> visited:string list ->
  Ast.program -> Ast.program

(** {2 Per-file steps}

    The analysis of a (spec set, project) pair decomposes into per-file
    sweeps over a {!project_state} that owns every piece of mutable
    state — no globals, so any number of states can be driven
    concurrently (the parallel scan engine runs one per project). *)

type project_state

val project_state :
  ?interprocedural:bool -> specs:Wap_catalog.Catalog.spec list -> unit ->
  project_state

(** Pass-1 step: compute and register the summaries of one file's
    functions (each visible to the functions and files after it).
    Sequential, in file order. *)
val summarize_file : project_state -> file_unit -> unit

(** {!summarize_file}, returning the summaries it registered (this
    file's pass-1 delta, function order).  A pass-1 delta depends only
    on the file's own source, the active specs and the summaries
    registered before it, so a caller that replays the same file order
    can persist deltas and {!register_summaries} them instead of
    re-analyzing — the engine's cross-project summary store. *)
val summarize_file_delta : project_state -> file_unit -> Summary.fused list

(** Register previously computed pass-1 summaries (a persisted delta)
    exactly as {!summarize_file} would have. *)
val register_summaries : project_state -> Summary.fused list -> unit

(** Pass-2 step: the candidates found inside one file's function bodies
    (paired with the finding spec's id, discovery order), refining
    their summaries now that callees are known.  Sequential, in file
    order, on the shared state. *)
val analyze_file_functions :
  project_state -> file_unit -> (int * Trace.candidate) list

(** Pass-3 step: top-level flows of one file, with literal includes of
    project files ([units]) spliced in place.  Pure with respect to the
    state (fresh context, read-only summaries), so different files may
    run concurrently.  Candidates are de-duplicated within the file
    only; run {!finalize} over the concatenation. *)
val analyze_file_toplevel :
  project_state -> units:file_unit list -> file_unit ->
  (int * Trace.candidate) list

(** {2 Read-only views of a project state}

    Used by the IR path ({!Wap_ir}) to drive its own pass-3 replay from
    the same specs, catalog lookup and summary table. *)

val state_specs : project_state -> Wap_catalog.Catalog.spec array
val state_lookup : project_state -> Wap_catalog.Catalog.Lookup.t
val state_summaries : project_state -> Summary.table

(** The base names a program's top-level literal includes resolve
    against — exactly the matching {!splice_includes} performs.  An
    incremental caller uses this to find the files that re-splice an
    edited one. *)
val include_basenames : Ast.program -> string list

(** Cross-file/cross-pass de-duplication (first emission wins) followed
    by the dead-sink filter.  Feed it pass-2 results (in file order)
    followed by pass-3 results (in file order). *)
val finalize :
  units:file_unit list ->
  (int * Trace.candidate) list ->
  (int * Trace.candidate) list

(** {!finalize} with a caller-supplied dead-sink predicate in place of
    the one built from [units] — byte-identical to [finalize] when
    [is_dead] is {!Wap_flow.Reach.is_dead} over the union of the
    units' dead sets (the session engine keeps that union per file). *)
val finalize_with :
  is_dead:(Loc.t -> bool) ->
  (int * Trace.candidate) list ->
  (int * Trace.candidate) list

(** Whole-project fused analysis: passes 1–3 over all files, finalized.
    Each candidate is paired with the id (list position in [specs]) of
    the spec that found it; candidates are in discovery order.

    [interprocedural:false] disables the summary mechanism (function
    bodies are still scanned for local flows, but taint no longer
    crosses call boundaries) — the ablation of DESIGN.md §6. *)
val analyze_project_indexed :
  ?interprocedural:bool ->
  specs:Wap_catalog.Catalog.spec list ->
  file_unit list ->
  (int * Trace.candidate) list

(** Analyze a set of files as one application under a single detector
    spec (the fused analysis of a one-spec set). *)
val analyze_project :
  ?interprocedural:bool ->
  spec:Wap_catalog.Catalog.spec ->
  file_unit list ->
  Trace.candidate list

(** Analyze a single parsed file. *)
val analyze_program :
  spec:Wap_catalog.Catalog.spec ->
  file:string ->
  Ast.program ->
  Trace.candidate list

(** Run several detector specs over the same project — one fused pass —
    and return the findings grouped by spec, in spec order (the shape a
    sequential run per sub-module configuration, as in Fig. 2, would
    produce). *)
val analyze_with_specs :
  ?interprocedural:bool ->
  specs:Wap_catalog.Catalog.spec list ->
  file_unit list ->
  Trace.candidate list
