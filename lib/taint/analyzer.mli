(** The taint analyzer: detects candidate vulnerabilities for one
    detector specification.

    The analysis is flow-sensitive inside each scope and interprocedural
    through {!Summary} tables.  Sanitization functions of the spec kill
    taint; validation functions do {e not} — they only add guard
    evidence to the flow, exactly like the original WAP, whose
    false-positive predictor is in charge of deciding whether the
    observed validations make the candidate a false alarm. *)

open Wap_php

(** The validation functions recognized as guards (Table I's validation
    category, plus a few common membership checks). *)
val guard_fns : string list

val is_guard_fn : string -> bool

(** One parsed source file of an application. *)
type file_unit = { path : string; program : Ast.program }

(** Top-level [include]/[require] of project files (matched by base
    name, literal paths only) spliced in place, so taint set up in an
    included file flows into the includer.  Cycles and chains deeper
    than 8 are cut. *)
val splice_includes :
  units:file_unit list -> depth:int -> visited:string list ->
  Ast.program -> Ast.program

(** Raised by {!Wap_core.Tool} helpers; kept here for reuse. *)

(** {2 Per-file steps}

    The analysis of a (spec, project) pair decomposes into per-file
    sweeps over a {!project_state} that owns every piece of mutable
    state — no globals, so any number of states can be driven
    concurrently (the parallel scan engine runs one per detector
    spec). *)

type project_state

val project_state :
  ?interprocedural:bool -> spec:Wap_catalog.Catalog.spec -> unit ->
  project_state

(** Pure per-file step: the summaries of the functions defined in one
    file, computed against (but never registered into) the given
    table. *)
val file_summaries :
  spec:Wap_catalog.Catalog.spec -> summaries:Summary.table -> file_unit ->
  Summary.t list

(** Pass-1 step: compute and register the summaries of one file's
    functions (each visible to the functions and files after it). *)
val summarize_file : project_state -> file_unit -> unit

(** Pass-2 step: emit candidates found inside one file's function
    bodies, refining their summaries now that callees are known. *)
val analyze_file_functions : project_state -> file_unit -> unit

(** Pass-3 step: top-level flows of one file, with literal includes of
    project files ([units]) spliced in place. *)
val analyze_file_toplevel :
  project_state -> units:file_unit list -> file_unit -> unit

(** Accumulated candidates, dead-sink filtered. *)
val project_candidates :
  project_state -> units:file_unit list -> Trace.candidate list

(** Analyze a set of files as one application under a single detector
    spec.  Function summaries are shared across the whole set, which is
    how WAP sees applications spread over many included files.

    [interprocedural:false] disables the summary mechanism (function
    bodies are still scanned for local flows, but taint no longer
    crosses call boundaries) — the ablation of DESIGN.md §6. *)
val analyze_project :
  ?interprocedural:bool ->
  spec:Wap_catalog.Catalog.spec ->
  file_unit list ->
  Trace.candidate list

(** Analyze a single parsed file. *)
val analyze_program :
  spec:Wap_catalog.Catalog.spec ->
  file:string ->
  Ast.program ->
  Trace.candidate list

(** Run several detector specs over the same project and concatenate the
    findings (one run per sub-module configuration, as in Fig. 2). *)
val analyze_with_specs :
  ?interprocedural:bool ->
  specs:Wap_catalog.Catalog.spec list ->
  file_unit list ->
  Trace.candidate list
