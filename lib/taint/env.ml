(** Taint environments: a flow-sensitive map from variable names to
    per-spec taint vectors.

    Arrays and objects are tracked coarsely by their base variable, which
    matches the granularity of the original WAP analyzer: if any element
    of [$a] is tainted, [$a] is tainted.

    A taint value is a sparse vector indexed by {e spec id} (the
    position of a detector spec in the active set): component [i]
    present means "tainted for spec [i], with this origin".  The empty
    vector is clean for every spec.  Components are kept sorted by id
    and never interact across ids, so a fused run over N specs computes,
    component by component, exactly what N independent single-spec runs
    would. *)

type taint = (int * Trace.origin) list [@@deriving show]

let clean : taint = []
let is_tainted (t : taint) = t <> []
let find (t : taint) id = List.assoc_opt id t

let of_origin ~ids (o : Trace.origin) : taint = List.map (fun id -> (id, o)) ids

let restrict (t : taint) ids = List.filter (fun (id, _) -> List.mem id ids) t
let without (t : taint) ids = List.filter (fun (id, _) -> not (List.mem id ids)) t

(* The components of one vector usually share one origin physically
   (built by {!of_origin}), so [f] — always pure here — is re-applied
   only when the input origin actually changes. *)
let map_origins f (t : taint) : taint =
  let rec go prev prev_r t =
    match t with
    | [] -> []
    | (id, o) :: tl ->
        let r = if o == prev then prev_r else f o in
        (id, r) :: go o r tl
  in
  match t with
  | [] -> []
  | (id, o) :: tl ->
      let r = f o in
      (id, r) :: go o r tl

(* Merge two sorted-by-id vectors with one function per case; [both] is
   memoized on physical equality of its operand pair, for the same
   shared-origin reason as {!map_origins}. *)
let combine ~both a b : taint =
  let prev = ref None in
  let both oa ob =
    match !prev with
    | Some (pa, pb, r) when pa == oa && pb == ob -> r
    | _ ->
        let r = both oa ob in
        prev := Some (oa, ob, r);
        r
  in
  let rec go a b =
    match (a, b) with
    | [], t | t, [] -> t
    | (ia, oa) :: ta, (ib, ob) :: tb ->
        if ia < ib then (ia, oa) :: go ta b
        else if ib < ia then (ib, ob) :: go a tb
        else (ia, both oa ob) :: go ta tb
  in
  go a b

(** [overlay a b]: union of two vectors; where both have a component,
    [a]'s wins.  Used to assemble disjoint id groups (e.g. the specs for
    which a name is a superglobal vs the rest). *)
let overlay a b = combine ~both:(fun oa _ -> oa) a b

(** Join for control-flow merges: taint wins (may-analysis).  When both
    sides are tainted we keep the left origin but merge guard evidence,
    so a guard present on only one path does not count. *)
let join (a : taint) (b : taint) : taint =
  if a == b then a
  else
    combine a b ~both:(fun o1 o2 ->
        if o1 == o2 then o1
        else
          { o1 with
            Trace.guards = Trace.inter_names o1.Trace.guards o2.Trace.guards })

(** Join used when combining operands of one expression (concatenation,
    arithmetic): evidence from both operands accumulates. *)
let join_operands (a : taint) (b : taint) : taint =
  combine a b ~both:(fun o1 o2 ->
      if o1 == o2 then o1
      else
        {
          o1 with
          Trace.through = Trace.union_names o1.Trace.through o2.Trace.through;
          Trace.guards = Trace.union_names o1.Trace.guards o2.Trace.guards;
        })

module M = Map.Make (String)

type t = taint M.t

let empty : t = M.empty
let get env v : taint = match M.find_opt v env with Some t -> t | None -> []
let set env v t : t = M.add v t env
let remove env v : t = M.remove v env

(** Pointwise join of two environments (after an if/else, loop, ...). *)
let merge (a : t) (b : t) : t =
  if a == b then a
  else
    M.merge
      (fun _ ta tb ->
        match (ta, tb) with
        | Some ta, Some tb -> Some (join ta tb)
        | Some t, None | None, Some t -> Some t
        | None, None -> None)
      a b

(** Cheap per-spec stabilization test for loop fixpoints: same key set
    tainted {e for spec [id]}.  Checking per spec (not over the union)
    is what lets a fused loop stop iterating each spec exactly when a
    single-spec run would. *)
let equal_shallow_for id (a : t) (b : t) =
  a == b
  ||
  let keys m =
    M.fold (fun k t acc -> if find t id <> None then k :: acc else acc) m []
  in
  keys a = keys b

(** [blend base ~from id]: environment whose component [id] (for every
    variable) comes from [from] and whose other components come from
    [base].  Restores a spec's loop-stabilization snapshot after other
    specs kept iterating. *)
let blend (base : t) ~(from : t) id : t =
  let stripped = M.map (fun t -> without t [ id ]) base in
  M.fold
    (fun k t acc ->
      match find t id with
      | None -> acc
      | Some o ->
          let cur = match M.find_opt k acc with Some c -> c | None -> [] in
          M.add k (overlay cur [ (id, o) ]) acc)
    from stripped
