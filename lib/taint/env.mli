(** Taint environments: a flow-sensitive map from variable names to
    per-spec taint vectors.

    Arrays and objects are tracked coarsely by their base variable,
    matching the granularity of the original WAP analyzer: if any
    element of [$a] is tainted, [$a] is tainted.

    A taint value is a sparse vector indexed by {e spec id}: component
    [i] present means "tainted for spec [i], with this origin"; the
    empty vector is clean for every spec.  Components never interact
    across ids, so one fused pass over N specs computes, component by
    component, exactly what N independent single-spec runs would. *)

type taint = (int * Trace.origin) list [@@deriving show]

val clean : taint
val is_tainted : taint -> bool

(** Component for one spec id. *)
val find : taint -> int -> Trace.origin option

(** The same origin for every given id (ids must be ascending). *)
val of_origin : ids:int list -> Trace.origin -> taint

(** Keep / drop the components of the given ids. *)
val restrict : taint -> int list -> taint

val without : taint -> int list -> taint

(** Apply [f] to every present component. *)
val map_origins : (Trace.origin -> Trace.origin) -> taint -> taint

(** Union of two vectors; where both have a component, the left wins.
    Used to assemble disjoint id groups. *)
val overlay : taint -> taint -> taint

(** Join for control-flow merges: taint wins (may-analysis); guards
    present on only one path are dropped.  Componentwise. *)
val join : taint -> taint -> taint

(** Join used when combining operands of one expression (concatenation,
    arithmetic): evidence from both operands accumulates.
    Componentwise. *)
val join_operands : taint -> taint -> taint

type t

val empty : t
val get : t -> string -> taint
val set : t -> string -> taint -> t
val remove : t -> string -> t

(** Pointwise join of two environments (after an if/else, loop, ...). *)
val merge : t -> t -> t

(** Cheap stabilization test for loop fixpoints: same key set tainted
    for the given spec id.  Per-spec, so a fused loop stops iterating
    each spec exactly when a single-spec run would. *)
val equal_shallow_for : int -> t -> t -> bool

(** [blend base ~from id]: environment whose component [id] comes from
    [from] for every variable and whose other components come from
    [base]. *)
val blend : t -> from:t -> int -> t
