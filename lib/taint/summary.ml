(** Interprocedural function summaries.

    For each user-defined function the analyzer records, per parameter:
    whether tainted data entering through it reaches the return value
    (and through which manipulation functions), and which sensitive
    sinks inside the body it can reach.  A parameter whose flow is
    killed by a sanitizer simply does not appear — so a user wrapper
    around [mysql_real_escape_string] is automatically treated as a
    sanitizer at call sites.

    Because sanitizers (and sources, and sinks) are per-spec, one
    function has one summary {e per active spec}: a {!fused} summary is
    the array of those per-spec summaries, built in a single body walk
    and indexed by spec id. *)

type param_flow = {
  pf_index : int;
  pf_through : string list;  (** manipulation functions on the way to return *)
  pf_guards : string list;  (** validation guards observed on the way *)
}
[@@deriving show]

type param_sink = {
  ps_index : int;
  ps_sink_name : string;
  ps_sink_loc : Wap_php.Loc.t;
  ps_through : string list;
}
[@@deriving show]

(** One spec's view of one function. *)
type t = {
  fn_name : string;  (** lowercase *)
  arity : int;
  returns_params : param_flow list;  (** params that flow to the return value *)
  param_sinks : param_sink list;  (** params that reach a sink inside *)
  returns_tainted : Trace.origin option;
      (** the function returns attacker data of its own (e.g. reads a
          superglobal and returns it) *)
}
[@@deriving show]

let empty fn_name arity =
  { fn_name; arity; returns_params = []; param_sinks = []; returns_tainted = None }

let find_param_flow t i = List.find_opt (fun pf -> pf.pf_index = i) t.returns_params

(** All active specs' views of one function, indexed by spec id. *)
type fused = {
  fs_name : string;  (** lowercase *)
  fs_arity : int;
  fs_specs : t array;
}

let fused_of_list name arity per_spec =
  { fs_name = name; fs_arity = arity; fs_specs = Array.of_list per_spec }

let for_spec (f : fused) id = f.fs_specs.(id)

(** Summaries table keyed by lowercase function name.  Methods are
    registered under their bare method name. *)
type table = (string, fused) Hashtbl.t

let create_table () : table = Hashtbl.create 64
let find (tbl : table) name = Hashtbl.find_opt tbl (String.lowercase_ascii name)
let register (tbl : table) (s : fused) = Hashtbl.replace tbl s.fs_name s
