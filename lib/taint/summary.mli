(** Interprocedural function summaries.

    For each user-defined function the analyzer records, per parameter:
    whether tainted data entering through it reaches the return value
    (and through which manipulation functions), and which sensitive
    sinks inside the body it can reach.  A parameter whose flow is
    killed by a sanitizer simply does not appear — so a user wrapper
    around [mysql_real_escape_string] is automatically treated as a
    sanitizer at call sites.

    Sanitizers, sources and sinks are per-spec, so one function has one
    summary {e per active spec}: a {!fused} summary is the array of
    per-spec summaries built in a single body walk, indexed by spec
    id. *)

type param_flow = {
  pf_index : int;
  pf_through : string list;  (** manipulation functions on the way to return *)
  pf_guards : string list;  (** validation guards observed on the way *)
}
[@@deriving show]

type param_sink = {
  ps_index : int;
  ps_sink_name : string;
  ps_sink_loc : Wap_php.Loc.t;
  ps_through : string list;
}
[@@deriving show]

(** One spec's view of one function. *)
type t = {
  fn_name : string;  (** lowercase *)
  arity : int;
  returns_params : param_flow list;  (** params that flow to the return value *)
  param_sinks : param_sink list;  (** params that reach a sink inside *)
  returns_tainted : Trace.origin option;
      (** the function returns attacker data of its own (e.g. reads a
          superglobal and returns it) *)
}
[@@deriving show]

val empty : string -> int -> t
val find_param_flow : t -> int -> param_flow option

(** All active specs' views of one function, indexed by spec id. *)
type fused = {
  fs_name : string;  (** lowercase *)
  fs_arity : int;
  fs_specs : t array;
}

val fused_of_list : string -> int -> t list -> fused
val for_spec : fused -> int -> t

(** Summary table keyed by lowercase function name; methods are
    registered under their bare method name. *)
type table

val create_table : unit -> table
val find : table -> string -> fused option
val register : table -> fused -> unit
