(** Candidate vulnerabilities: tainted data-flow paths from an entry
    point to a sensitive sink.

    A candidate is what the code analyzer hands to the false-positive
    predictor.  Besides the path itself it carries the raw evidence the
    symptom collector needs: every function the tainted data passed
    through and every validation guard observed dominating the flow. *)

open Wap_php

type step = {
  step_loc : Loc.t;
  step_desc : string;  (** rendered source of the propagating statement *)
}
[@@deriving show, eq]

(** Literal/dynamic structure of a string the tainted data was spliced
    into, e.g. ["SELECT * FROM t WHERE id = "; <dyn>] — the SQL-symptom
    collector needs it to see FROM clauses and numeric contexts even when
    the query is built in a variable before reaching the sink. *)
type qpart = Qlit of string | Qdyn [@@deriving show, eq]

(** Where the tainted data originally came from. *)
type origin = {
  source : string;  (** e.g. ["$_GET['user']"] or ["mysql_fetch_assoc"] *)
  source_loc : Loc.t;
  steps : step list;  (** propagation chain, oldest first *)
  through : string list;
      (** names of functions applied to the data on its way (lowercase);
          casts appear as ["(int)"] etc. *)
  guards : string list;
      (** validation predicates observed guarding the flow, e.g.
          ["is_numeric"], ["isset"], ["preg_match"] *)
  parts : qpart list;
      (** structure of the latest string built from the data (see {!qpart}) *)
}
[@@deriving show, eq]

let origin ~source ~source_loc =
  { source; source_loc; steps = []; through = []; guards = []; parts = [] }

let with_parts o parts = { o with parts }

let add_step o step = { o with steps = o.steps @ [ step ] }
let add_through o fname = { o with through = fname :: o.through }
let add_guard o g = if List.mem g o.guards then o else { o with guards = g :: o.guards }

(* ------------------------------------------------------------------ *)
(* Evidence-list merges.                                               *)

(* [through]/[guards] are small most of the time, but deep concatenation
   chains fold thousands of operands into one origin; the naive
   prepend-if-absent accumulation is then quadratic.  Both merges below
   keep the exact output (order included) of the naive versions and
   switch to a set-backed membership test once the lists are big enough
   for it to pay. *)

module SS = Set.Make (String)

let small_merge = 8

(** [union_names base extra]: fold [extra] onto [base], prepending each
    element not already present — the accumulation historically done with
    [if List.mem x l then l else x :: l]. *)
let union_names base extra =
  match extra with
  | [] -> base
  | _ ->
      if List.length base + List.length extra <= small_merge then
        List.fold_left
          (fun l x -> if List.mem x l then l else x :: l)
          base extra
      else
        let seen = ref (SS.of_list base) in
        List.fold_left
          (fun l x ->
            if SS.mem x !seen then l
            else begin
              seen := SS.add x !seen;
              x :: l
            end)
          base extra

(** [inter_names a b]: elements of [a] also present in [b], in [a]'s
    order — guard intersection at control-flow merges. *)
let inter_names a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | _ ->
      if List.length a + List.length b <= small_merge then
        List.filter (fun g -> List.mem g b) a
      else
        let in_b = SS.of_list b in
        List.filter (fun g -> SS.mem g in_b) a

(** Is the origin a function-summary placeholder for parameter [i]? *)
let param_source i = Printf.sprintf "param:%d" i

let param_index_of_source s =
  if String.length s > 6 && String.sub s 0 6 = "param:" then
    int_of_string_opt (String.sub s 6 (String.length s - 6))
  else None

type candidate = {
  vclass : Wap_catalog.Vuln_class.t;
  file : string;
  sink_name : string;  (** function/construct at the sink, e.g. ["mysql_query"], ["echo"] *)
  sink_loc : Loc.t;
  origins : origin list;  (** one per tainted argument flow *)
  sink_args : Ast.expr list;  (** the sink's argument expressions *)
  tainted_positions : int list;  (** indices of the tainted arguments *)
}
[@@deriving show]

(** Primary origin used for reporting (the first tainted flow). *)
let primary c = match c.origins with o :: _ -> o | [] -> origin ~source:"?" ~source_loc:Loc.dummy

(** One-line rendering: class, sink and source. *)
let summary c =
  let o = primary c in
  Printf.sprintf "%s: %s -> %s at %s"
    (Wap_catalog.Vuln_class.acronym c.vclass)
    o.source c.sink_name
    (Loc.to_string c.sink_loc)

(** Stable identity used to de-duplicate candidates found by several
    detectors for the same flow (e.g. RFI and LFI share the include
    sink, and the paper reports them together as "Files").  The source
    and the propagation path are part of the key so distinct flows into
    one shared sink — e.g. two call sites of a query helper — stay
    distinct. *)
let dedup_key c =
  let o = primary c in
  let path_sig =
    match List.rev o.steps with
    | last :: _ -> Printf.sprintf "%s:%d" last.step_loc.Loc.file last.step_loc.Loc.line
    | [] -> ""
  in
  Printf.sprintf "%s|%d:%d|%s|%s|%s" c.file c.sink_loc.Loc.line
    c.sink_loc.Loc.col
    (Wap_catalog.Vuln_class.report_group c.vclass)
    o.source path_sig
