(** Candidate vulnerabilities: tainted data-flow paths from an entry
    point to a sensitive sink.

    A candidate is what the code analyzer hands to the false-positive
    predictor.  Besides the path itself it carries the raw evidence the
    symptom collector needs: every function the tainted data passed
    through and every validation guard observed dominating the flow. *)

open Wap_php

type step = {
  step_loc : Loc.t;
  step_desc : string;  (** rendered source of the propagating statement *)
}
[@@deriving show, eq]

(** Literal/dynamic structure of a string the tainted data was spliced
    into, e.g. ["SELECT * FROM t WHERE id = "; <dyn>] — the SQL-symptom
    collector needs it to see FROM clauses and numeric contexts even
    when the query is built in a variable before reaching the sink. *)
type qpart = Qlit of string | Qdyn [@@deriving show, eq]

(** Where the tainted data originally came from. *)
type origin = {
  source : string;  (** e.g. ["$_GET['user']"] or ["mysql_fetch_assoc"] *)
  source_loc : Loc.t;
  steps : step list;  (** propagation chain, oldest first *)
  through : string list;
      (** names of functions applied to the data on its way (lowercase);
          casts appear as ["(int)"] etc. *)
  guards : string list;
      (** validation predicates observed guarding the flow, e.g.
          ["is_numeric"], ["isset"], ["preg_match"] *)
  parts : qpart list;
      (** structure of the latest string built from the data *)
}
[@@deriving show, eq]

val origin : source:string -> source_loc:Loc.t -> origin
val with_parts : origin -> qpart list -> origin
val add_step : origin -> step -> origin
val add_through : origin -> string -> origin
val add_guard : origin -> string -> origin

(** [union_names base extra] folds [extra] onto [base], prepending each
    element not already present — the [through]/[guards] accumulation of
    operand joins.  Set-backed above a small size, naive below; output is
    identical either way. *)
val union_names : string list -> string list -> string list

(** [inter_names a b]: elements of [a] also present in [b], in [a]'s
    order — the guard intersection at control-flow merges. *)
val inter_names : string list -> string list -> string list

(** The placeholder source name for parameter [i] during function-summary
    analysis. *)
val param_source : int -> string

(** [Some i] when the source is {!param_source}[ i]. *)
val param_index_of_source : string -> int option

type candidate = {
  vclass : Wap_catalog.Vuln_class.t;
  file : string;
  sink_name : string;
      (** function/construct at the sink, e.g. ["mysql_query"], ["echo"] *)
  sink_loc : Loc.t;
  origins : origin list;  (** one per tainted argument flow *)
  sink_args : Ast.expr list;  (** the sink's argument expressions *)
  tainted_positions : int list;  (** indices of the tainted arguments *)
}
[@@deriving show]

(** Primary origin used for reporting (the first tainted flow). *)
val primary : candidate -> origin

(** One-line rendering: class, sink and source. *)
val summary : candidate -> string

(** Stable identity used to de-duplicate candidates found by several
    detectors for the same flow (e.g. RFI and LFI share the include
    sink, and the paper reports them together as "Files").  The source
    and propagation path are part of the key so distinct flows into one
    shared sink stay distinct. *)
val dedup_key : candidate -> string
