(** Weapon persistence.

    A weapon is stored as a directory:
    {v
    <dir>/<name>/
      detector.spec     ep/ss/san lines (Spec_file format)
      fix.spec          fix template configuration
      symptoms.spec     dynamic symptom mapping, "user_fn -> static_symptom"
    v}

    This mirrors the paper's design where the generated detector reads
    its ep/ss/san sets from files, so users can edit a weapon without
    touching the tool. *)

module Cat = Wap_catalog.Catalog

let ( / ) = Filename.concat

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let read_file = Wap_php.Io.read_file

(* --- fix template serialization --- *)

let chars_to_string chars =
  String.concat ","
    (List.map (fun c -> string_of_int (Char.code c)) chars)

let chars_of_string s =
  String.split_on_char ',' s
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map (fun x -> Char.chr (int_of_string (String.trim x)))

let fix_to_lines (fix : Wap_fixer.Fix.t) : string =
  let open Wap_fixer.Fix in
  let b = Buffer.create 128 in
  Buffer.add_string b ("name: " ^ fix.fix_name ^ "\n");
  (match fix.template with
  | Php_sanitization { sanitizer } ->
      Buffer.add_string b "template: php_sanitization\n";
      Buffer.add_string b ("sanitizer: " ^ sanitizer ^ "\n")
  | User_sanitization { malicious; neutralizer } ->
      Buffer.add_string b "template: user_sanitization\n";
      Buffer.add_string b ("malicious: " ^ chars_to_string malicious ^ "\n");
      (* encoded as character codes: the neutralizer is often a space,
         which line trimming would destroy *)
      Buffer.add_string b
        ("neutralizer_codes: "
        ^ chars_to_string (List.of_seq (String.to_seq neutralizer))
        ^ "\n")
  | User_validation { malicious } ->
      Buffer.add_string b "template: user_validation\n";
      Buffer.add_string b ("malicious: " ^ chars_to_string malicious ^ "\n")
  | Content_validation { patterns } ->
      Buffer.add_string b "template: content_validation\n";
      List.iter (fun p -> Buffer.add_string b ("pattern: " ^ p ^ "\n")) patterns
  | Session_reset -> Buffer.add_string b "template: session_reset\n");
  Buffer.contents b

exception Corrupt of string

let key_values contents =
  String.split_on_char '\n' contents
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line ':' with
           | None -> raise (Corrupt ("bad line: " ^ line))
           | Some i ->
               Some
                 ( String.sub line 0 i,
                   String.trim (String.sub line (i + 1) (String.length line - i - 1)) ))

let find_kv kvs key =
  match List.assoc_opt key kvs with
  | Some v -> v
  | None -> raise (Corrupt ("missing field " ^ key))

let fix_of_lines ~vclass contents : Wap_fixer.Fix.t =
  let kvs = key_values contents in
  let open Wap_fixer.Fix in
  let template =
    match find_kv kvs "template" with
    | "php_sanitization" -> Php_sanitization { sanitizer = find_kv kvs "sanitizer" }
    | "user_sanitization" ->
        let neutralizer =
          match List.assoc_opt "neutralizer_codes" kvs with
          | Some codes -> String.init (List.length (chars_of_string codes))
                            (List.nth (chars_of_string codes))
          | None -> find_kv kvs "neutralizer"
        in
        User_sanitization
          { malicious = chars_of_string (find_kv kvs "malicious"); neutralizer }
    | "user_validation" ->
        User_validation { malicious = chars_of_string (find_kv kvs "malicious") }
    | "content_validation" ->
        Content_validation
          { patterns = List.filter_map (fun (k, v) -> if k = "pattern" then Some v else None) kvs }
    | "session_reset" -> Session_reset
    | other -> raise (Corrupt ("unknown template " ^ other))
  in
  { fix_name = find_kv kvs "name"; vclass; template }

let symptoms_to_lines (map : Wap_mining.Symptom.dynamic_map) : string =
  String.concat ""
    (List.map (fun (fn, sym) -> Printf.sprintf "%s -> %s\n" fn sym) map)

let symptoms_of_lines contents : Wap_mining.Symptom.dynamic_map =
  String.split_on_char '\n' contents
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char '>' line with
           | [ left; right ] ->
               let left = String.trim left in
               let left =
                 (* strip the trailing '-' of '->' *)
                 if String.length left > 0 && left.[String.length left - 1] = '-'
                 then String.trim (String.sub left 0 (String.length left - 1))
                 else left
               in
               Some (String.lowercase_ascii left, String.trim right)
           | _ -> raise (Corrupt ("bad symptom line: " ^ line)))

(** Save a weapon under [dir/<name>/]. *)
let save ~dir (w : Weapon.t) : unit =
  let wdir = dir / w.Weapon.name in
  if not (Sys.file_exists wdir) then Sys.mkdir wdir 0o755;
  write_file (wdir / "meta.spec")
    (Printf.sprintf "class: %s\n" (Wap_catalog.Vuln_class.acronym w.Weapon.vclass));
  write_file (wdir / "detector.spec") (Wap_catalog.Spec_file.to_string w.Weapon.spec);
  write_file (wdir / "fix.spec") (fix_to_lines w.Weapon.fix);
  write_file (wdir / "symptoms.spec") (symptoms_to_lines w.Weapon.dynamic_symptoms)

(** Load a weapon from [dir/<name>/].  A weapon named after a builtin
    class acronym (e.g. "nosqli") is restored with that class, so report
    grouping and stock fixes keep working across the round-trip. *)
let load ~dir ~name : Weapon.t =
  let wdir = dir / name in
  let vclass =
    let from_meta =
      let path = wdir / "meta.spec" in
      if Sys.file_exists path then
        match List.assoc_opt "class" (key_values (read_file path)) with
        | Some acr -> Wap_catalog.Vuln_class.of_acronym acr
        | None -> None
      else None
    in
    match from_meta with
    | Some c -> c
    | None -> (
        match Wap_catalog.Vuln_class.of_acronym name with
        | Some c -> c
        | None -> Wap_catalog.Vuln_class.Custom name)
  in
  let spec =
    Wap_catalog.Spec_file.spec_of_string ~vclass (read_file (wdir / "detector.spec"))
  in
  let fix = fix_of_lines ~vclass (read_file (wdir / "fix.spec")) in
  let dynamic_symptoms =
    let path = wdir / "symptoms.spec" in
    if Sys.file_exists path then symptoms_of_lines (read_file path) else []
  in
  { Weapon.name; flag = "-" ^ name; vclass; spec; fix; dynamic_symptoms }
