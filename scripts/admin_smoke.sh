#!/usr/bin/env bash
# End-to-end smoke test for the `wap serve` admin plane.
#
# Starts the daemon with an LSP stdio transport fed through a FIFO and
# an admin HTTP listener, drives real LSP traffic (didOpen a vulnerable
# file), and asserts against the live admin endpoints:
#   /healthz  -> 200 ok, before and after the session opens
#   /readyz   -> 503 before the first didOpen, 200 after
#   /metrics  -> well-formed Prometheus text (TYPE lines, request
#                histogram with +Inf bucket and consistent _count)
#   /status   -> JSON with ready:true and an open document
#   /trace    -> well-formed Chrome trace JSON (traceEvents array),
#                and a second drain succeeds while traffic continues
#   wap top --once renders the same plane as a terminal view
#
# Usage: scripts/admin_smoke.sh  (WAP overrides the binary under test)
set -euo pipefail

WAP=${WAP:-_build/default/bin/wap_cli.exe}
PORT=${ADMIN_PORT:-9377}
DIR=$(mktemp -d)
FIFO="$DIR/lsp.in"
OUT="$DIR/lsp.out"
LOG="$DIR/serve.log"
SRV_PID=""
cleanup() {
  [ -n "$SRV_PID" ] && kill "$SRV_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

if [ ! -x "$WAP" ]; then
  echo "admin_smoke: $WAP not found (run 'dune build bin/wap_cli.exe' first)" >&2
  exit 2
fi

fail() {
  echo "admin_smoke FAIL: $1" >&2
  echo "--- server log ---" >&2
  cat "$LOG" >&2 || true
  exit 1
}

# GET a path; prints "<http-code>" and writes the body to $2
get() {
  curl -sS -m 10 -o "$2" -w '%{http_code}' "http://127.0.0.1:$PORT$1"
}

frame() {
  local body=$1
  printf 'Content-Length: %d\r\n\r\n%s' "${#body}" "$body"
}

mkfifo "$FIFO"
"$WAP" serve --jobs 1 --log-level info --admin-port "$PORT" --slow-ms 5000 \
  < "$FIFO" > "$OUT" 2> "$LOG" &
SRV_PID=$!

# keep the FIFO writable for the whole test; messages are appended below
exec 3> "$FIFO"

# wait for the admin plane to come up
for _ in $(seq 1 50); do
  if CODE=$(get /healthz "$DIR/healthz" 2>/dev/null) && [ "$CODE" = 200 ]; then
    break
  fi
  sleep 0.2
done
[ "${CODE:-}" = 200 ] || fail "/healthz never answered 200"
grep -q ok "$DIR/healthz" || fail "/healthz body is not ok"

# before any didOpen the daemon must be alive but not ready
CODE=$(get /readyz "$DIR/readyz")
[ "$CODE" = 503 ] || fail "/readyz should be 503 before a session opens (got $CODE)"

# open a vulnerable document over LSP
VULN='<?php $id = $_GET[\"id\"]; $r = mysql_query(\"SELECT * FROM t WHERE id = \" . $id); ?>'
frame '{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}' >&3
frame "{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didOpen\",\"params\":{\"textDocument\":{\"uri\":\"file:///smoke/a.php\",\"text\":\"$VULN\"}}}" >&3

# readiness must flip once the session is open
READY=""
for _ in $(seq 1 50); do
  if CODE=$(get /readyz "$DIR/readyz") && [ "$CODE" = 200 ]; then
    READY=yes
    break
  fi
  sleep 0.2
done
[ "$READY" = yes ] || fail "/readyz never flipped to 200 after didOpen"

# /status: ready, one open document
CODE=$(get /status "$DIR/status")
[ "$CODE" = 200 ] || fail "/status answered $CODE"
grep -q '"ready": *true' "$DIR/status" || fail "/status does not report ready:true"
grep -q '"open_documents": *1' "$DIR/status" || fail "/status does not report 1 open document"

# /metrics: well-formed Prometheus text
CODE=$(get /metrics "$DIR/metrics")
[ "$CODE" = 200 ] || fail "/metrics answered $CODE"
grep -q '^# TYPE wap_serve_requests_total counter$' "$DIR/metrics" \
  || fail "/metrics missing the request counter TYPE line"
grep -q '^# TYPE wap_serve_request_seconds histogram$' "$DIR/metrics" \
  || fail "/metrics missing the request histogram TYPE line"
grep -q 'wap_serve_request_seconds_bucket{method="textDocument/didOpen",le="+Inf"}' "$DIR/metrics" \
  || fail "/metrics missing the didOpen +Inf bucket"
# the +Inf bucket must equal _count for the same label set
INF=$(sed -n 's/^wap_serve_request_seconds_bucket{method="textDocument\/didOpen",le="+Inf"} //p' "$DIR/metrics")
CNT=$(sed -n 's/^wap_serve_request_seconds_count{method="textDocument\/didOpen"} //p' "$DIR/metrics")
[ -n "$INF" ] && [ "$INF" = "$CNT" ] \
  || fail "didOpen +Inf bucket ($INF) != _count ($CNT)"
# no malformed sample lines: every non-comment line is name{...} value
BAD=$(grep -v '^#' "$DIR/metrics" | grep -cEv '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+$' || true)
[ "$BAD" = 0 ] || fail "$BAD malformed sample line(s) in /metrics"

# /trace: well-formed Chrome trace JSON, twice, while traffic continues
CODE=$(get /trace "$DIR/trace1")
[ "$CODE" = 200 ] || fail "/trace answered $CODE"
grep -q '"traceEvents":\[' "$DIR/trace1" || fail "/trace is not a Chrome trace document"
frame "{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didChange\",\"params\":{\"textDocument\":{\"uri\":\"file:///smoke/a.php\"},\"contentChanges\":[{\"text\":\"$VULN\"}]}}" >&3
sleep 0.5
CODE=$(get /trace "$DIR/trace2")
[ "$CODE" = 200 ] || fail "second /trace drain answered $CODE"
grep -q '"traceEvents":\[' "$DIR/trace2" || fail "second /trace drain is not a Chrome trace document"

# unknown paths 404
CODE=$(get /nope "$DIR/nope")
[ "$CODE" = 404 ] || fail "unknown admin path answered $CODE, not 404"

# wap top renders the same plane
"$WAP" top --port "$PORT" --once > "$DIR/top" || fail "wap top --once failed"
grep -q 'wap serve' "$DIR/top" || fail "wap top output missing the overview table"
grep -q 'textDocument/didOpen' "$DIR/top" || fail "wap top output missing per-method latency"

# clean shutdown
frame '{"jsonrpc":"2.0","id":9,"method":"shutdown","params":{}}' >&3
frame '{"jsonrpc":"2.0","method":"exit"}' >&3
exec 3>&-
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

echo "admin_smoke OK: healthz/readyz transition, Prometheus metrics, trace drain, wap top"
