#!/usr/bin/env bash
# End-to-end smoke test for `wap fleet`.
#
# Exercises the documented fleet flow against a generated multi-project
# corpus sharing one framework layer:
#   corpus-gen --projects               -> materialize the corpus
#   fleet --workers 1 / --workers 2     -> merged NDJSON must be byte-identical
#   WAP_FLEET_TEST_CRASH=<proj>         -> a killed worker is retried, output
#                                          unchanged, exit 0
#   WAP_FLEET_TEST_CRASH=<proj>:always  -> the retry dies too: nonzero exit
#                                          naming the failed project
#   summary JSON                        -> dedup hit ratio > 0 (the shared
#                                          layer was scanned once fleet-wide)
#
# Usage: scripts/fleet_smoke.sh  (WAP overrides the binary under test)
set -euo pipefail

WAP=${WAP:-_build/default/bin/wap_cli.exe}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

if [ ! -x "$WAP" ]; then
  echo "fleet_smoke: $WAP not found (run 'dune build bin/wap_cli.exe' first)" >&2
  exit 2
fi

fail() { echo "fleet_smoke: FAIL: $*" >&2; exit 1; }

"$WAP" corpus-gen --out "$WORK/corpus" --projects 6 > /dev/null
ROOT="$WORK/corpus/projects"
[ -d "$ROOT/proj_001-1.0" ] || fail "corpus-gen --projects did not write $ROOT/proj_001-1.0"

# 1. merged output is byte-identical whatever the worker count
"$WAP" fleet "$ROOT" --workers 1 --cache-dir "$WORK/cache1" \
  --out "$WORK/w1.ndjson" --log-level warn
"$WAP" fleet "$ROOT" --workers 2 --cache-dir "$WORK/cache2" \
  --out "$WORK/w2.ndjson" --summary "$WORK/summary.json" --log-level warn
cmp "$WORK/w1.ndjson" "$WORK/w2.ndjson" \
  || fail "1-worker and 2-worker merged NDJSON differ"
[ "$(wc -l < "$WORK/w1.ndjson")" -eq 6 ] \
  || fail "expected 6 merged lines, got $(wc -l < "$WORK/w1.ndjson")"

# 2. the summary store deduplicates the shared framework layer
grep -q '"fleet_dedup_hit_ratio": 0\.0*[1-9]' "$WORK/summary.json" \
  || fail "dedup hit ratio is 0 — shared layer not deduplicated: $(cat "$WORK/summary.json")"

# 3. a worker killed on its first attempt is retried; output unchanged
WAP_FLEET_TEST_CRASH=proj_001-1.0 \
  "$WAP" fleet "$ROOT" --workers 2 --cache-dir "$WORK/cache3" \
  --out "$WORK/crash.ndjson" --summary "$WORK/crash-summary.json" \
  --log-level error \
  || fail "fleet did not survive a single worker death"
cmp "$WORK/w1.ndjson" "$WORK/crash.ndjson" \
  || fail "output changed after a worker death + retry"
grep -q '"retried": 1' "$WORK/crash-summary.json" \
  || fail "retry not recorded: $(cat "$WORK/crash-summary.json")"

# 4. a worker that dies on the retry too fails only its project, loudly
if WAP_FLEET_TEST_CRASH=proj_001-1.0:always \
  "$WAP" fleet "$ROOT" --workers 2 --cache-dir "$WORK/cache4" \
  --out "$WORK/doomed.ndjson" --log-level quiet 2> "$WORK/doomed.err"; then
  fail "fleet exited 0 although a project failed after its retry"
fi
grep -q 'proj_001-1.0' "$WORK/doomed.err" \
  || fail "failed project not named on stderr: $(cat "$WORK/doomed.err")"
[ "$(wc -l < "$WORK/doomed.ndjson")" -eq 5 ] \
  || fail "expected the 5 surviving projects in the merge"

echo "fleet_smoke: OK (6 projects; determinism, dedup, retry, hard failure)"
