#!/usr/bin/env bash
# End-to-end smoke test for the `wap serve` LSP daemon over stdio.
#
# Drives the documented editor flow with framed JSON-RPC messages:
#   initialize
#   didOpen  (a vulnerable file)     -> expect publishDiagnostics with >=1 SQLI
#   didChange (sanitized contents)   -> expect publishDiagnostics clearing it
#   shutdown / exit
#
# Usage: scripts/lsp_smoke.sh  (WAP overrides the binary under test)
set -euo pipefail

WAP=${WAP:-_build/default/bin/wap_cli.exe}
OUT=$(mktemp)
trap 'rm -f "$OUT"' EXIT

if [ ! -x "$WAP" ]; then
  echo "lsp_smoke: $WAP not found (run 'dune build bin/wap_cli.exe' first)" >&2
  exit 2
fi

frame() {
  local body=$1
  printf 'Content-Length: %d\r\n\r\n%s' "${#body}" "$body"
}

# JSON string escaping for the PHP payloads
esc() { printf '%s' "$1" | sed 's/\\/\\\\/g; s/"/\\"/g'; }

VULN='<?php $id = $_GET["id"]; $r = mysql_query("SELECT * FROM t WHERE id = " . $id); ?>'
SAFE='<?php $id = mysql_real_escape_string($_GET["id"]); $r = mysql_query("SELECT * FROM t WHERE id = " . $id); ?>'
URI='file:///smoke/a.php'

{
  frame '{"jsonrpc":"2.0","id":1,"method":"initialize","params":{}}'
  frame "{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didOpen\",\"params\":{\"textDocument\":{\"uri\":\"$URI\",\"text\":\"$(esc "$VULN")\"}}}"
  frame "{\"jsonrpc\":\"2.0\",\"method\":\"textDocument/didChange\",\"params\":{\"textDocument\":{\"uri\":\"$URI\"},\"contentChanges\":[{\"text\":\"$(esc "$SAFE")\"}]}}"
  frame '{"jsonrpc":"2.0","id":2,"method":"shutdown","params":{}}'
  frame '{"jsonrpc":"2.0","method":"exit"}'
} | "$WAP" serve --jobs 1 --log-level warn > "$OUT"

# one message per line for ordered assertions
MSGS=$(tr -d '\r' < "$OUT" | sed 's/Content-Length:/\n&/g')

fail() {
  echo "lsp_smoke FAIL: $1" >&2
  echo "--- server output ---" >&2
  printf '%s\n' "$MSGS" >&2
  exit 1
}

printf '%s\n' "$MSGS" | grep -q '"codeActionProvider":true' \
  || fail "initialize response missing codeActionProvider"

SQLI_LINE=$(printf '%s\n' "$MSGS" \
  | grep -n 'publishDiagnostics' | grep '"code":"SQLI"' \
  | head -1 | cut -d: -f1)
[ -n "$SQLI_LINE" ] || fail "no publishDiagnostics with a SQLI finding after didOpen"

printf '%s\n' "$MSGS" | sed -n "${SQLI_LINE}p" | grep -q '"severity":1' \
  || fail "SQLI diagnostic not published at error severity"

CLEAR_LINE=$(printf '%s\n' "$MSGS" \
  | grep -n 'publishDiagnostics.*"diagnostics":\[\]' \
  | head -1 | cut -d: -f1)
[ -n "$CLEAR_LINE" ] || fail "diagnostics not cleared after the sanitizing edit"

[ "$SQLI_LINE" -lt "$CLEAR_LINE" ] \
  || fail "diagnostics cleared before they were published (order $SQLI_LINE vs $CLEAR_LINE)"

echo "lsp_smoke OK: SQLI published on didOpen, cleared on sanitized didChange"
