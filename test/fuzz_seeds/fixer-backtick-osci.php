<?php
// An OS-command-injection sink inside backticks cannot be fixed by
// wrapping the backtick result; the corrector must rewrite it to
// shell_exec() with each interpolated expression sanitized.
$v0 = $_GET['cmd'];
`run {$v0}`;
echo `x{$v0}tail` . $v0;
