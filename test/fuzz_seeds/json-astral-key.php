<?php
// Astral-plane characters in reported snippets must survive the JSON
// export round trip (UTF-16 surrogate pairing in \u escapes).
$q = $_GET['😀id'];
mysql_query("SELECT $q");
