<?php
// Integer literals beyond 2^63-1 must lex as floats (PHP semantics),
// not raise Failure("int_of_string").
$a = 0xFFFFFFFFFFFFFFFF;
$b = 9223372036854775808;
$c = 0x10000000000000000;
echo "x{$a}$b[99999999999999999999]";
