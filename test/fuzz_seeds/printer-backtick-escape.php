<?php
// A literal backtick inside a backtick operator must be re-escaped by
// the printer, or the reprint re-lexes as two shell strings.
$out = `ls \`pwd\``;
echo $out;
