<?php
// ?? is right-associative; a left-nested coalesce must keep its parens
// when printed or the reparse changes the tree.
($_POST ?? 0) ?? 0;
$_POST ?? 0 ?? 0;
2 ** 3 ** 2;
