<?php
// Nested unary minus must not print as --, which re-lexes as a
// pre-decrement.
- -$_POST;
+ +$_GET;
