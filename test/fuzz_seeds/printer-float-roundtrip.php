<?php
// Overflowing literals become infinite floats; the printer must emit a
// PHP-lexable spelling (not "inf"), and finite floats must round-trip
// to the same value.
$f = 1e309;
$g = 0.30000000000000004;
$h = 1.5e-8;
