(** Integration tests: tool versions, training, the full pipeline over
    corpus packages, scoring, and the experiment drivers. *)

module VC = Wap_catalog.Vuln_class
module V = Wap_core.Version
module T = Wap_core.Tool
module A = Wap_core.Aggregate
module DS = Wap_mining.Dataset

let seed = 2016

(* Shared fixtures: training and tool creation are the expensive parts,
   so build them once. *)
let wape = lazy (T.create ~seed V.Wape)
let v21 = lazy (T.create ~seed V.Wap_v21)

(* ------------------------------------------------------------------ *)
(* Versions and training.                                              *)

let test_version_configs () =
  Alcotest.(check int) "v2.1 classes" 9 (List.length (V.classes V.Wap_v21));
  Alcotest.(check int) "WAPe classes" 16 (List.length (V.classes V.Wape));
  Alcotest.(check bool) "v2.1 uses original attributes" true
    (V.attribute_mode V.Wap_v21 = Wap_mining.Attributes.Original);
  Alcotest.(check int) "v2.1 instances" 76 (V.training_instances V.Wap_v21);
  Alcotest.(check int) "WAPe instances" 256 (V.training_instances V.Wape)

let test_wape_dataset () =
  let d = Wap_core.Training.dataset_for ~seed V.Wape in
  Alcotest.(check int) "256 instances" 256 (DS.size d);
  Alcotest.(check int) "balanced" 128 (DS.positives d);
  (* no ambiguous vectors survive: every vector has one label *)
  let dd = DS.deduplicate d in
  Alcotest.(check int) "already deduplicated" (DS.size d) (DS.size dd)

let test_v21_dataset () =
  let d = Wap_core.Training.dataset_for ~seed V.Wap_v21 in
  (* the paper's split is 32 FP / 44 RV; the coarse 15-attribute space
     saturates below 44 distinct real-vulnerability vectors *)
  Alcotest.(check int) "32 false positives" 32 (DS.positives d);
  Alcotest.(check bool) "a good number of reals" true (DS.negatives d >= 15);
  match d.DS.instances with
  | i :: _ -> Alcotest.(check int) "15 attributes" 15 (Array.length i.DS.features)
  | [] -> Alcotest.fail "empty dataset"

let test_training_deterministic () =
  let a = Wap_core.Training.dataset_for ~seed V.Wape in
  let b = Wap_core.Training.dataset_for ~seed V.Wape in
  Alcotest.(check bool) "same dataset" true
    (List.for_all2
       (fun (x : DS.instance) (y : DS.instance) ->
         x.DS.label = y.DS.label && x.DS.features = y.DS.features)
       a.DS.instances b.DS.instances)

(* ------------------------------------------------------------------ *)
(* Pipeline on corpus packages.                                        *)

let acp () =
  Wap_corpus.Appgen.of_webapp_profile ~seed
    (List.nth Wap_corpus.Profiles.vulnerable_webapps 0)

(* the retired [analyze_package]/[analyze_source] wrappers, spelled as
   [Scan] requests *)
let scan_package tool pkg =
  (T.Scan.run tool (T.Scan.request_of_package pkg)).T.Scan.result

let scan_source tool ~file src =
  (T.Scan.run tool (T.Scan.request [ (file, src) ])).T.Scan.result

let test_pipeline_acp () =
  (* Admin Control Panel Lite 2: 9 SQLI + 72 XSS, 8 easy FPs *)
  let tool = Lazy.force wape in
  let result = scan_package tool (acp ()) in
  let score = A.score_package result in
  Alcotest.(check int) "all reals found" 81
    (score.A.real_reported + score.A.real_missed);
  Alcotest.(check int) "none undetected" 0 score.A.real_undetected;
  Alcotest.(check int) "every candidate matched to truth" 0 score.A.unmatched;
  Alcotest.(check int) "9 vulnerable files" 9 score.A.vuln_files;
  Alcotest.(check (option int)) "SQLI group" (Some 9)
    (List.assoc_opt "SQLI" score.A.by_group);
  Alcotest.(check (option int)) "XSS group" (Some 72)
    (List.assoc_opt "XSS" score.A.by_group);
  Alcotest.(check bool) "most FPs predicted" true (score.A.fpp >= 5)

let test_pipeline_v21_misses_new_classes () =
  (* a package with only new-class vulnerabilities is invisible to v2.1 *)
  let pkg =
    Wap_corpus.Appgen.generate ~seed ~kind:Wap_corpus.Appgen.Webapp ~name:"newonly"
      ~version:"1" ~files:3 ~vuln_files:2
      ~vulns:[ (VC.Hi, 2); (VC.Ldapi, 1); (VC.Sf, 1) ]
      ~fp_easy:0 ~fp_hard:0 ~sanitized:0 ()
  in
  let r21 = scan_package (Lazy.force v21) pkg in
  Alcotest.(check int) "v2.1 sees nothing" 0 (List.length r21.T.candidates);
  let re = scan_package (Lazy.force wape) pkg in
  Alcotest.(check int) "WAPe sees all four" 4 (List.length re.T.reported)

let test_pipeline_wpsqli_weapon_needed () =
  let pkg =
    Wap_corpus.Appgen.of_plugin_profile ~seed
      (List.find
         (fun (p : Wap_corpus.Profiles.plugin_profile) ->
           p.Wap_corpus.Profiles.pp_name = "Simple support ticket system")
         Wap_corpus.Profiles.vulnerable_plugins)
  in
  (* without the weapon, $wpdb flows are invisible *)
  let without = scan_package (Lazy.force wape) pkg in
  Alcotest.(check int) "no weapon, no findings" 0 (List.length without.T.reported);
  let armed = T.create ~seed ~weapons:[ Wap_weapon.Generator.wpsqli () ] V.Wape in
  let with_w = scan_package armed pkg in
  Alcotest.(check int) "18 with the weapon" 18 (List.length with_w.T.reported)

let test_analysis_time_measured () =
  let result = scan_package (Lazy.force wape) (acp ()) in
  Alcotest.(check bool) "time recorded" true (result.T.analysis_seconds >= 0.0);
  Alcotest.(check bool) "loc counted" true (result.T.loc > 500)

let test_escape_experiment () =
  let before, after = Wap_core.Experiments.escape_experiment ~seed () in
  Alcotest.(check bool) "feeding escape() removes reports" true (after < before)

let test_analyze_source_and_correct () =
  let tool = Lazy.force wape in
  let src = "<?php\nmysql_query('SELECT * FROM t WHERE c = ' . $_GET['c']);\n" in
  let fixed, report = T.correct_source tool ~file:"one.php" src in
  Alcotest.(check int) "one fix" 1 (List.length report.Wap_fixer.Corrector.applied);
  (* the corrected file no longer alarms *)
  let result = scan_source tool ~file:"one.php" fixed in
  Alcotest.(check int) "fixed is clean" 0 (List.length result.T.reported)

let test_dedup_across_specs () =
  (* an include sink is flagged by both RFI and LFI detectors but must be
     reported once *)
  let tool = Lazy.force wape in
  let result = scan_source tool ~file:"i.php" "<?php\ninclude($_GET['p']);\n" in
  Alcotest.(check int) "deduplicated" 1 (List.length result.T.candidates)

(* ------------------------------------------------------------------ *)
(* Experiments (quick versions).                                       *)

let test_table1_content () =
  let t = Wap_core.Experiments.table1 () in
  Alcotest.(check bool) "mentions is_int" true
    (String.length t > 0 &&
     (let rec contains i =
        i + 6 <= String.length t && (String.sub t i 6 = "is_int" || contains (i + 1))
      in
      contains 0))

let test_table2_and_3 () =
  let d = Wap_core.Training.dataset_for ~seed V.Wape in
  let evals = Wap_core.Experiments.evaluate_models ~seed ~dataset:d () in
  Alcotest.(check int) "three classifiers" 3 (List.length evals);
  List.iter
    (fun (e : Wap_core.Experiments.model_eval) ->
      let c = e.Wap_core.Experiments.me_confusion in
      Alcotest.(check int)
        (e.Wap_core.Experiments.me_name ^ " covers the data set")
        (DS.size d) (Wap_mining.Metrics.total c);
      (* the paper's shape: high accuracy, low fallout *)
      Alcotest.(check bool)
        (e.Wap_core.Experiments.me_name ^ " accuracy > 90%")
        true
        (Wap_mining.Metrics.acc c > 0.90);
      Alcotest.(check bool)
        (e.Wap_core.Experiments.me_name ^ " fallout < 10%")
        true
        (Wap_mining.Metrics.pfp c < 0.10))
    evals

let test_table4_lists_paper_sinks () =
  let t = Wap_core.Experiments.table4 () in
  List.iter
    (fun needle ->
      let rec contains i =
        i + String.length needle <= String.length t
        && (String.sub t i (String.length needle) = needle || contains (i + 1))
      in
      Alcotest.(check bool) needle true (contains 0))
    [ "setcookie"; "ldap_search"; "xpath_eval"; "file_put_contents" ]

let test_quick_plugin_run () =
  let runs = Wap_core.Experiments.run_plugins ~seed ~only_vulnerable:true () in
  Alcotest.(check int) "23 plugins" 23 (List.length runs);
  let total =
    List.fold_left
      (fun acc (r : Wap_core.Experiments.plugin_run) ->
        acc + r.Wap_core.Experiments.pr_score.A.real_reported)
      0 runs
  in
  Alcotest.(check int) "169 vulnerabilities (Table VII)" 169 total

let test_score_sum () =
  let s1 =
    { A.real_reported = 1; real_missed = 2; real_undetected = 0; fpp = 3; fp = 4;
      unmatched = 0; by_group = [ ("XSS", 1) ]; vuln_files = 1 }
  in
  let s2 =
    { A.real_reported = 10; real_missed = 0; real_undetected = 1; fpp = 1; fp = 0;
      unmatched = 1; by_group = [ ("XSS", 5); ("SQLI", 5) ]; vuln_files = 2 }
  in
  let t = A.sum_scores [ s1; s2 ] in
  Alcotest.(check int) "real" 11 t.A.real_reported;
  Alcotest.(check int) "fpp" 4 t.A.fpp;
  Alcotest.(check (option int)) "xss merged" (Some 6) (List.assoc_opt "XSS" t.A.by_group);
  Alcotest.(check (option int)) "sqli" (Some 5) (List.assoc_opt "SQLI" t.A.by_group)

let () =
  Alcotest.run "wap_core"
    [
      ( "versions & training",
        [
          Alcotest.test_case "version configs" `Quick test_version_configs;
          Alcotest.test_case "WAPe dataset" `Slow test_wape_dataset;
          Alcotest.test_case "v2.1 dataset" `Slow test_v21_dataset;
          Alcotest.test_case "training deterministic" `Slow test_training_deterministic;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "ACP package end-to-end" `Slow test_pipeline_acp;
          Alcotest.test_case "v2.1 misses new classes" `Slow
            test_pipeline_v21_misses_new_classes;
          Alcotest.test_case "wpsqli weapon needed for $wpdb" `Slow
            test_pipeline_wpsqli_weapon_needed;
          Alcotest.test_case "timing measured" `Slow test_analysis_time_measured;
          Alcotest.test_case "escape experiment (V-A)" `Slow test_escape_experiment;
          Alcotest.test_case "analyze + correct source" `Slow
            test_analyze_source_and_correct;
          Alcotest.test_case "dedup across detectors" `Slow test_dedup_across_specs;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "Table I content" `Quick test_table1_content;
          Alcotest.test_case "Tables II/III shape" `Slow test_table2_and_3;
          Alcotest.test_case "Table IV sinks" `Quick test_table4_lists_paper_sinks;
          Alcotest.test_case "Table VII quick run" `Slow test_quick_plugin_run;
          Alcotest.test_case "score summation" `Quick test_score_sum;
        ] );
    ]
