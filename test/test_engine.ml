(** The parallel scan engine: pool semantics, determinism of the merged
    output across worker counts, and the digest-keyed incremental
    cache. *)

module T = Wap_core.Tool
module Scan = Wap_core.Scan
module Pool = Wap_engine.Pool
module Cache = Wap_engine.Cache

let seed = 2016
let wape = lazy (T.create ~seed Wap_core.Version.Wape)

let acp =
  lazy
    (Wap_corpus.Appgen.of_webapp_profile ~seed
       (List.nth Wap_corpus.Profiles.vulnerable_webapps 0))

let acp_files () =
  let pkg = Lazy.force acp in
  List.map
    (fun (f : Wap_corpus.Appgen.file) ->
      (f.Wap_corpus.Appgen.f_name, f.Wap_corpus.Appgen.f_source))
    pkg.Wap_corpus.Appgen.pkg_files

(* ------------------------------------------------------------------ *)
(* Pool.                                                               *)

let test_pool_order () =
  let xs = Array.init 100 Fun.id in
  List.iter
    (fun jobs ->
      let ys = Pool.map ~jobs (fun i -> i * i) xs in
      Alcotest.(check (array int))
        (Printf.sprintf "squares in input order at jobs=%d" jobs)
        (Array.init 100 (fun i -> i * i))
        ys)
    [ 1; 2; 4; 8 ]

let test_pool_deterministic_failure () =
  (* indices 13, 37, 61, 85 fail; the lowest one must escape whatever
     the scheduling *)
  let xs = Array.init 100 Fun.id in
  let f i = if i mod 24 = 13 then failwith (string_of_int i) else i in
  for _ = 1 to 5 do
    List.iter
      (fun jobs ->
        match Pool.map ~jobs f xs with
        | _ -> Alcotest.fail "expected an exception"
        | exception Failure msg ->
            Alcotest.(check string)
              (Printf.sprintf "lowest failing index at jobs=%d" jobs)
              "13" msg)
      [ 1; 2; 4 ]
  done

let test_config_default_jobs () =
  let original = Sys.getenv_opt "WAP_JOBS" in
  Unix.putenv "WAP_JOBS" "3";
  Alcotest.(check int) "WAP_JOBS honoured" 3 (Wap_engine.Config.default_jobs ());
  Alcotest.(check int) "flag beats env" 5 (Wap_engine.Config.jobs (Some 5));
  Unix.putenv "WAP_JOBS" "bogus";
  Alcotest.(check bool) "bogus falls back to >= 1" true
    (Wap_engine.Config.default_jobs () >= 1);
  Unix.putenv "WAP_JOBS" (Option.value original ~default:"");
  Alcotest.(check bool) "restored >= 1" true
    (Wap_engine.Config.default_jobs () >= 1)

let test_pool_map_list_empty () =
  Alcotest.(check (list int)) "empty in, empty out" []
    (Pool.map_list ~jobs:4 (fun x -> x) [])

(* ------------------------------------------------------------------ *)
(* Determinism across worker counts.                                   *)

let zero_timings (r : T.package_result) =
  {
    r with
    T.analysis_seconds = 0.0;
    analysis_cpu_seconds = 0.0;
    phase_seconds = List.map (fun (k, _) -> (k, 0.0)) r.T.phase_seconds;
  }

let test_scan_deterministic () =
  let tool = Lazy.force wape in
  let files = acp_files () in
  let export jobs =
    let o = Scan.run tool (Scan.request ~jobs files) in
    Wap_core.Export.result_to_string (zero_timings o.Scan.result)
  in
  let j1 = export 1 in
  Alcotest.(check bool) "non-trivial corpus" true (String.length j1 > 1000);
  Alcotest.(check string) "jobs=2 byte-identical to jobs=1" j1 (export 2);
  Alcotest.(check string) "jobs=4 byte-identical to jobs=1" j1 (export 4)

let test_fused_equals_per_spec () =
  (* the tentpole invariant: the fused multi-spec pass and the per-spec
     escape hatch produce byte-identical exports, at any worker count *)
  let tool = Lazy.force wape in
  let files = acp_files () in
  let export ~fuse jobs =
    let o = Scan.run tool (Scan.request ~fuse ~jobs files) in
    Wap_core.Export.result_to_string (zero_timings o.Scan.result)
  in
  let fused = export ~fuse:true 1 in
  Alcotest.(check bool) "non-trivial corpus" true (String.length fused > 1000);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "per-spec jobs=%d identical to fused" jobs)
        fused
        (export ~fuse:false jobs);
      Alcotest.(check string)
        (Printf.sprintf "fused jobs=%d identical to fused jobs=1" jobs)
        fused
        (export ~fuse:true jobs))
    [ 1; 4 ]

let test_engine_merge_order () =
  (* the raw (pre-dedup) engine output is also order-stable *)
  let tool = Lazy.force wape in
  let run jobs =
    let o =
      Wap_engine.Scan.run
        (Wap_engine.Scan.request ~jobs ~specs:tool.T.specs (acp_files ()))
    in
    List.map Wap_taint.Trace.summary o.Wap_engine.Scan.candidates
  in
  Alcotest.(check (list string)) "merge order jobs=4 = jobs=1" (run 1) (run 4)

let test_scan_matches_package_request () =
  (* a package request and a plain file-list request over the same
     sources route through the same engine: identical findings (the
     exports differ only in the package header the former carries) *)
  let tool = Lazy.force wape in
  let files = acp_files () in
  let via_files = Scan.run tool (Scan.request ~jobs:2 files) in
  let via_pkg =
    (Scan.run tool (Scan.request_of_package (Lazy.force acp))).Scan.result
  in
  Alcotest.(check int) "no recovered errors" 0
    (List.length via_files.Scan.parse_errors);
  Alcotest.(check (list string)) "file and package requests agree"
    (List.map Wap_taint.Trace.summary via_pkg.T.candidates)
    (List.map Wap_taint.Trace.summary via_files.Scan.result.T.candidates);
  Alcotest.(check int) "reported agree"
    (List.length via_pkg.T.reported)
    (List.length via_files.Scan.result.T.reported)

(* ------------------------------------------------------------------ *)
(* Cache.                                                              *)

let test_cache_memoize () =
  let c = Cache.create () in
  let calls = ref 0 in
  let compute () = incr calls; 42 in
  let v1, hit1 = Cache.memoize c ~key:(Cache.key [ "k" ]) compute in
  let v2, hit2 = Cache.memoize c ~key:(Cache.key [ "k" ]) compute in
  Alcotest.(check (pair int bool)) "first is a miss" (42, false) (v1, hit1);
  Alcotest.(check (pair int bool)) "second is a hit" (42, true) (v2, hit2);
  Alcotest.(check int) "computed once" 1 !calls;
  Alcotest.(check int) "hits counted" 1 (Cache.hits c);
  Alcotest.(check int) "misses counted" 1 (Cache.misses c)

let test_cache_rescan_hits () =
  let tool = Lazy.force wape in
  let files = acp_files () in
  let nfiles = List.length files in
  (* fused: one parse entry plus one analysis entry per FILE *)
  let cache = Cache.create () in
  let o1 = Scan.run tool (Scan.request ~fuse:true ~jobs:2 ~cache files) in
  Alcotest.(check int) "cold scan misses everything" (nfiles + nfiles)
    o1.Scan.cache_misses;
  Alcotest.(check int) "cold scan hits nothing" 0 o1.Scan.cache_hits;
  let o2 = Scan.run tool (Scan.request ~fuse:true ~jobs:2 ~cache files) in
  Alcotest.(check int) "warm rescan hits everything" (nfiles + nfiles)
    o2.Scan.cache_hits;
  Alcotest.(check int) "warm rescan misses nothing" 0 o2.Scan.cache_misses;
  Alcotest.(check string) "cached result identical"
    (Wap_core.Export.result_to_string (zero_timings o1.Scan.result))
    (Wap_core.Export.result_to_string (zero_timings o2.Scan.result))

let test_cache_rescan_hits_per_spec () =
  let tool = Lazy.force wape in
  let files = acp_files () in
  let nfiles = List.length files and nspecs = List.length tool.T.specs in
  (* per-spec escape hatch: one analysis entry per SPEC *)
  let cache = Cache.create () in
  let o1 = Scan.run tool (Scan.request ~fuse:false ~jobs:2 ~cache files) in
  Alcotest.(check int) "cold scan misses everything" (nfiles + nspecs)
    o1.Scan.cache_misses;
  let o2 = Scan.run tool (Scan.request ~fuse:false ~jobs:2 ~cache files) in
  Alcotest.(check int) "warm rescan hits everything" (nfiles + nspecs)
    o2.Scan.cache_hits;
  Alcotest.(check string) "cached result identical"
    (Wap_core.Export.result_to_string (zero_timings o1.Scan.result))
    (Wap_core.Export.result_to_string (zero_timings o2.Scan.result))

let test_cache_source_edit_invalidates () =
  let tool = Lazy.force wape in
  let files = acp_files () in
  let nfiles = List.length files in
  let cache = Cache.create () in
  let _ = Scan.run tool (Scan.request ~fuse:true ~jobs:2 ~cache files) in
  (* editing one file re-parses just that file but re-analyzes the whole
     project (summaries and includes are cross-file, so every per-file
     analysis entry embeds the whole-project digest) *)
  let edited =
    match files with
    | (path, src) :: rest -> (path, src ^ "\n") :: rest
    | [] -> assert false
  in
  let o = Scan.run tool (Scan.request ~fuse:true ~jobs:2 ~cache edited) in
  Alcotest.(check int) "unchanged files still hit" (nfiles - 1) o.Scan.cache_hits;
  Alcotest.(check int) "edited parse + every analysis entry recomputed"
    (1 + nfiles) o.Scan.cache_misses

let test_cache_spec_set_invalidates () =
  let tool = Lazy.force wape in
  let files = acp_files () in
  let nfiles = List.length files in
  let cache = Cache.create () in
  let _ = Scan.run tool (Scan.request ~fuse:true ~jobs:2 ~cache files) in
  (* equipping a weapon changes the spec-set fingerprint: parse entries
     survive, every per-file analysis entry is invalid *)
  let armed =
    T.create ~seed ~weapons:[ Wap_weapon.Generator.wpsqli () ]
      Wap_core.Version.Wape
  in
  Alcotest.(check bool) "fingerprints differ" false
    (String.equal (T.Scan.fingerprint tool) (T.Scan.fingerprint armed));
  let o = Scan.run armed (Scan.request ~fuse:true ~jobs:2 ~cache files) in
  Alcotest.(check int) "parses reused across tools" nfiles o.Scan.cache_hits;
  Alcotest.(check int) "every file re-analyzed" nfiles o.Scan.cache_misses

let test_cache_weapon_added_mid_cache () =
  (* regression: a weapon equipped after the cache is warm must change
     the scan result exactly as it would with no cache at all *)
  let tool = Lazy.force wape in
  let files = acp_files () in
  let cache = Cache.create () in
  let _ = Scan.run tool (Scan.request ~fuse:true ~jobs:2 ~cache files) in
  let armed =
    T.create ~seed ~weapons:[ Wap_weapon.Generator.wpsqli () ]
      Wap_core.Version.Wape
  in
  let via_warm_cache =
    Scan.run armed (Scan.request ~fuse:true ~jobs:2 ~cache files)
  in
  let via_no_cache = Scan.run armed (Scan.request ~fuse:true ~jobs:2 files) in
  Alcotest.(check string) "warm cache does not mask the new weapon"
    (Wap_core.Export.result_to_string (zero_timings via_no_cache.Scan.result))
    (Wap_core.Export.result_to_string (zero_timings via_warm_cache.Scan.result))

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let test_cache_disk_persistence () =
  let tool = Lazy.force wape in
  let files = acp_files () in
  let nfiles = List.length files in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wap-cache-test-%d" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists dir then rm_rf dir)
    (fun () ->
      let c1 = Cache.create ~dir () in
      let o1 = Scan.run tool (Scan.request ~fuse:true ~jobs:2 ~cache:c1 files) in
      Alcotest.(check int) "first process misses" (nfiles + nfiles)
        o1.Scan.cache_misses;
      (* a fresh Cache.t on the same directory simulates a new process *)
      let c2 = Cache.create ~dir () in
      let o2 = Scan.run tool (Scan.request ~fuse:true ~jobs:2 ~cache:c2 files) in
      Alcotest.(check int) "second process hits from disk" (nfiles + nfiles)
        o2.Scan.cache_hits;
      Alcotest.(check string) "persisted result identical"
        (Wap_core.Export.result_to_string (zero_timings o1.Scan.result))
        (Wap_core.Export.result_to_string (zero_timings o2.Scan.result)))

(* ------------------------------------------------------------------ *)
(* Progress and timings.                                               *)

let test_progress_and_timings () =
  let tool = Lazy.force wape in
  let files = acp_files () in
  let parsed = ref 0 and spec_analyzed = ref 0 and file_analyzed = ref 0 in
  let on_progress = function
    | Wap_engine.Scan.File_parsed _ -> incr parsed
    | Wap_engine.Scan.Spec_analyzed _ -> incr spec_analyzed
    | Wap_engine.Scan.File_analyzed _ -> incr file_analyzed
  in
  let o = Scan.run tool (Scan.request ~fuse:true ~jobs:2 ~on_progress files) in
  Alcotest.(check int) "one parse event per file" (List.length files) !parsed;
  Alcotest.(check int) "one analyze event per file (fused)"
    (List.length files) !file_analyzed;
  Alcotest.(check int) "no per-spec events (fused)" 0 !spec_analyzed;
  Alcotest.(check int) "one timing per file" (List.length files)
    (List.length o.Scan.file_timings);
  Alcotest.(check int) "one report per spec" (List.length tool.T.specs)
    (List.length o.Scan.spec_timings);
  Alcotest.(check bool) "wall clock recorded" true
    (o.Scan.result.T.analysis_seconds > 0.0);
  Alcotest.(check bool) "cpu clock recorded" true
    (o.Scan.result.T.analysis_cpu_seconds > 0.0);
  (* the per-spec escape hatch still reports per-spec progress *)
  parsed := 0;
  spec_analyzed := 0;
  file_analyzed := 0;
  let _ = Scan.run tool (Scan.request ~fuse:false ~jobs:2 ~on_progress files) in
  Alcotest.(check int) "one analyze event per spec (per-spec)"
    (List.length tool.T.specs) !spec_analyzed;
  Alcotest.(check int) "no per-file analyze events (per-spec)" 0 !file_analyzed

let test_phase_breakdown () =
  let tool = Lazy.force wape in
  let o = Scan.run tool (Scan.request ~jobs:2 (acp_files ())) in
  let phases = o.Scan.result.T.phase_seconds in
  Alcotest.(check (list string)) "phases in pipeline order"
    [ "parse"; "digest"; "analyze"; "merge"; "predict" ]
    (List.map fst phases);
  List.iter
    (fun (k, s) ->
      Alcotest.(check bool) (k ^ " is non-negative") true (s >= 0.0))
    phases;
  let accounted = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 phases in
  let total = o.Scan.result.T.analysis_seconds in
  (* acceptance criterion is 10%; allow 25% here to keep CI unflaky on
     loaded shared runners *)
  Alcotest.(check bool)
    (Printf.sprintf "phases (%.4fs) account for most of the wall clock (%.4fs)"
       accounted total)
    true
    (accounted <= total && accounted >= 0.75 *. total)

(* ------------------------------------------------------------------ *)
(* Optional tracing of the whole suite: WAP_TRACE_OUT=FILE installs a
   global tracer before any test runs and writes a Chrome trace when the
   process exits.  CI uses this to archive a trace artifact; it also
   exercises the "tracing changes no scan result" guarantee on every
   test above.                                                          *)

let () =
  match Sys.getenv_opt "WAP_TRACE_OUT" with
  | None | Some "" -> ()
  | Some path ->
      let tracer = Wap_obs.Trace.create () in
      Wap_obs.Trace.set_global (Some tracer);
      at_exit (fun () ->
          Wap_obs.Trace.set_global None;
          Wap_obs.Trace.write tracer ~file:path)

let () =
  Alcotest.run "wap_engine"
    [
      ( "pool",
        [
          Alcotest.test_case "order preserved" `Quick test_pool_order;
          Alcotest.test_case "deterministic failure" `Quick
            test_pool_deterministic_failure;
          Alcotest.test_case "WAP_JOBS default" `Quick test_config_default_jobs;
          Alcotest.test_case "empty map_list" `Quick test_pool_map_list_empty;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "export byte-identical for jobs 1/2/4" `Slow
            test_scan_deterministic;
          Alcotest.test_case "fused = per-spec, jobs 1/4" `Slow
            test_fused_equals_per_spec;
          Alcotest.test_case "engine merge order stable" `Slow
            test_engine_merge_order;
          Alcotest.test_case "package request routes through Scan" `Slow
            test_scan_matches_package_request;
        ] );
      ( "cache",
        [
          Alcotest.test_case "memoize" `Quick test_cache_memoize;
          Alcotest.test_case "warm rescan hits everything (fused)" `Slow
            test_cache_rescan_hits;
          Alcotest.test_case "warm rescan hits everything (per-spec)" `Slow
            test_cache_rescan_hits_per_spec;
          Alcotest.test_case "source edit invalidates" `Slow
            test_cache_source_edit_invalidates;
          Alcotest.test_case "spec set invalidates" `Slow
            test_cache_spec_set_invalidates;
          Alcotest.test_case "weapon added mid-cache" `Slow
            test_cache_weapon_added_mid_cache;
          Alcotest.test_case "disk persistence" `Slow test_cache_disk_persistence;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "progress + timings" `Slow test_progress_and_timings;
          Alcotest.test_case "phase breakdown" `Slow test_phase_breakdown;
        ] );
    ]
