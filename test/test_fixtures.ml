(** Golden integration tests on the handwritten fixture applications:
    exact findings, false-positive triage, dynamic confirmation and
    correction, over realistic multi-file PHP. *)

module VC = Wap_catalog.Vuln_class

let seed = 2016

let tools =
  lazy
    (let wape = Wap_core.Tool.create ~seed Wap_core.Version.Wape in
     let wp =
       Wap_core.Tool.create ~seed
         ~weapons:[ Wap_weapon.Generator.wpsqli () ]
         Wap_core.Version.Wape
     in
     (wape, wp))

let package name files =
  {
    Wap_corpus.Appgen.pkg_name = name;
    pkg_version = "1.0";
    pkg_kind = Wap_corpus.Appgen.Webapp;
    pkg_files =
      List.map
        (fun (f_name, f_source) -> { Wap_corpus.Appgen.f_name; f_source })
        files;
    pkg_seeded = [];
  }

let groups_of findings =
  List.sort compare
    (List.map
       (fun (f : Wap_core.Tool.finding) ->
         ( VC.report_group f.Wap_core.Tool.candidate.Wap_taint.Trace.vclass,
           f.Wap_core.Tool.candidate.Wap_taint.Trace.file ))
       findings)

let pair_list = Alcotest.(list (pair string string))

let analyze ?(wp = false) name files =
  let wape, wp_tool = Lazy.force tools in
  let tool = if wp then wp_tool else wape in
  (Wap_core.Tool.Scan.run tool
     (Wap_core.Tool.Scan.request_of_package (package name files)))
    .Wap_core.Tool.Scan.result

let check_findings name files ~expected_vulns ~expected_fps ?(wp = false) () =
  let result = analyze ~wp name files in
  let vulns =
    List.filter (fun (f : Wap_core.Tool.finding) -> not f.Wap_core.Tool.predicted_fp)
      result.Wap_core.Tool.findings
  in
  let fps =
    List.filter (fun (f : Wap_core.Tool.finding) -> f.Wap_core.Tool.predicted_fp)
      result.Wap_core.Tool.findings
  in
  Alcotest.check pair_list (name ^ " vulnerabilities")
    (List.sort compare expected_vulns) (groups_of vulns);
  Alcotest.check pair_list (name ^ " false positives")
    (List.sort compare expected_fps) (groups_of fps);
  result

(* ------------------------------------------------------------------ *)

let test_blog_findings () =
  ignore
    (check_findings "blog" Fixtures.blog
       ~expected_vulns:Fixtures.blog_expected_vulns
       ~expected_fps:Fixtures.blog_expected_fps ())

let test_blog_cross_file_flow () =
  (* the theme is tainted in config.php and echoed in index.php: the
     finding must land on index.php through include splicing *)
  let result = analyze "blog" Fixtures.blog in
  let xss_on_index =
    List.filter
      (fun (f : Wap_core.Tool.finding) ->
        let c = f.Wap_core.Tool.candidate in
        VC.report_group c.Wap_taint.Trace.vclass = "XSS"
        && c.Wap_taint.Trace.file = "index.php"
        && (Wap_taint.Trace.primary c).Wap_taint.Trace.source = "$_COOKIE['theme']")
      result.Wap_core.Tool.findings
  in
  Alcotest.(check int) "cross-file XSS found" 1 (List.length xss_on_index)

let test_blog_confirmation () =
  let result = analyze "blog" Fixtures.blog in
  let units = Wap_core.Tool.parse_package (package "blog" Fixtures.blog) in
  (* the cross-file flow cannot be replayed per-file (taint comes from
     another unit), so restrict to single-file findings; stored XSS is
     not replayable by design *)
  let single_file =
    List.filter
      (fun (c : Wap_taint.Trace.candidate) ->
        (Wap_taint.Trace.primary c).Wap_taint.Trace.source_loc.Wap_php.Loc.file
        = c.Wap_taint.Trace.file)
      result.Wap_core.Tool.reported
  in
  let stored =
    List.length
      (List.filter
         (fun (c : Wap_taint.Trace.candidate) ->
           VC.equal c.Wap_taint.Trace.vclass VC.Xss_stored)
         single_file)
  in
  let confirmed, refuted, unsupported =
    Wap_confirm.Confirm.confirm_batch units single_file
  in
  Alcotest.(check int) "all replayable single-file vulns confirmed"
    (List.length single_file - stored)
    confirmed;
  Alcotest.(check int) "none refuted" 0 refuted;
  Alcotest.(check int) "stored XSS not replayable" stored unsupported;
  (* ... and the predicted FPs do not replay *)
  let fc, _, _ =
    Wap_confirm.Confirm.confirm_batch units result.Wap_core.Tool.predicted_fps
  in
  Alcotest.(check int) "no FP is exploitable" 0 fc

let test_blog_correction () =
  let result = analyze "blog" Fixtures.blog in
  let post_vulns =
    List.filter
      (fun (c : Wap_taint.Trace.candidate) -> c.Wap_taint.Trace.file = "post.php")
      result.Wap_core.Tool.reported
  in
  let fixed, report =
    Wap_fixer.Corrector.correct_source ~file:"post.php" Fixtures.blog_post_php
      post_vulns
  in
  (* the SQLI sink lives in lib.php's q() helper, so post.php only gets
     the header-injection fix *)
  Alcotest.(check int) "one fix in post.php" 1
    (List.length report.Wap_fixer.Corrector.applied);
  (* the corrected file, analyzed back in its package context, no longer
     alarms in post.php *)
  let wape, _ = Lazy.force tools in
  let fixed_blog =
    List.map
      (fun (n, src) -> if n = "post.php" then (n, fixed) else (n, src))
      Fixtures.blog
  in
  let again =
    (Wap_core.Tool.Scan.run wape
       (Wap_core.Tool.Scan.request_of_package (package "blog" fixed_blog)))
      .Wap_core.Tool.Scan.result
  in
  let in_post =
    List.filter
      (fun (c : Wap_taint.Trace.candidate) -> c.Wap_taint.Trace.file = "post.php")
      again.Wap_core.Tool.reported
  in
  Alcotest.(check int) "corrected post.php is clean" 0 (List.length in_post)

let test_store_findings () =
  ignore
    (check_findings "store" Fixtures.store
       ~expected_vulns:Fixtures.store_expected_vulns
       ~expected_fps:Fixtures.store_expected_fps ())

let test_store_method_flow () =
  (* the XSS flows through Cart::receipt_row and render() *)
  let result = analyze "store" Fixtures.store in
  let xss =
    List.find
      (fun (f : Wap_core.Tool.finding) ->
        VC.report_group f.Wap_core.Tool.candidate.Wap_taint.Trace.vclass = "XSS")
      result.Wap_core.Tool.findings
  in
  let o = Wap_taint.Trace.primary xss.Wap_core.Tool.candidate in
  Alcotest.(check bool) "through receipt_row" true
    (List.mem "receipt_row" o.Wap_taint.Trace.through)

let test_store_basename_silent () =
  (* download.php: the basename()d flow must not even be a candidate *)
  let result = analyze "store" Fixtures.store in
  let download_candidates =
    List.filter
      (fun (c : Wap_taint.Trace.candidate) ->
        c.Wap_taint.Trace.file = "download.php")
      result.Wap_core.Tool.candidates
  in
  Alcotest.(check int) "only the raw readfile is flagged" 1
    (List.length download_candidates)

let test_wp_plugin_findings () =
  let result =
    check_findings ~wp:true "metrics" Fixtures.wp_plugin
      ~expected_vulns:Fixtures.wp_expected_vulns
      ~expected_fps:Fixtures.wp_expected_fps ()
  in
  (* the prepared statement must not be flagged at all *)
  Alcotest.(check int) "two candidates only" 2
    (List.length result.Wap_core.Tool.candidates)

let test_wp_needs_weapon () =
  (* without -wpsqli the plugin is invisible *)
  let result = analyze ~wp:false "metrics" Fixtures.wp_plugin in
  Alcotest.(check int) "no weapon, no findings" 0
    (List.length result.Wap_core.Tool.candidates)

let test_fixtures_parse_and_print () =
  (* every fixture file round-trips through the printer *)
  List.iter
    (fun (name, src) ->
      let prog = Wap_php.Parser.parse_string ~file:name src in
      let printed = Wap_php.Printer.program_to_string prog in
      let reparsed = Wap_php.Parser.parse_string ~file:name printed in
      Alcotest.(check string)
        (name ^ " printer stable")
        printed
        (Wap_php.Printer.program_to_string reparsed))
    (Fixtures.blog @ Fixtures.store @ Fixtures.wp_plugin)

let () =
  Alcotest.run "wap_fixtures"
    [
      ( "blog (nightingale)",
        [
          Alcotest.test_case "findings" `Slow test_blog_findings;
          Alcotest.test_case "cross-file include flow" `Slow test_blog_cross_file_flow;
          Alcotest.test_case "dynamic confirmation" `Slow test_blog_confirmation;
          Alcotest.test_case "correction" `Slow test_blog_correction;
        ] );
      ( "store (tinystore)",
        [
          Alcotest.test_case "findings" `Slow test_store_findings;
          Alcotest.test_case "method flow" `Slow test_store_method_flow;
          Alcotest.test_case "basename stays silent" `Slow test_store_basename_silent;
        ] );
      ( "wordpress plugin (metrics)",
        [
          Alcotest.test_case "findings" `Slow test_wp_plugin_findings;
          Alcotest.test_case "weapon required" `Slow test_wp_needs_weapon;
        ] );
      ( "front-end",
        [ Alcotest.test_case "fixtures round-trip" `Quick test_fixtures_parse_and_print ] );
    ]
