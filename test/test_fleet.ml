(** The fleet: wire protocol round-trips, project discovery, merged
    NDJSON byte-determinism across worker counts, worker-death retry,
    the cross-project summary store, the hardened shared disk cache it
    rides on, the admin plane's short-write loop, and the fuzz
    driver's sorted seed replay. *)

module Proto = Wap_fleet.Proto
module Worker = Wap_fleet.Worker
module Coordinator = Wap_fleet.Coordinator
module Cache = Wap_engine.Cache
module Json = Wap_report.Json

(* The coordinator re-executes this very binary as its workers: enter
   worker mode before Alcotest sees argv. *)
let () = Wap_fleet.Worker.maybe_main ()

(* ------------------------------------------------------------------ *)
(* Scratch directories.                                                *)

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    Sys.mkdir d 0o755
  end

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let scratch_counter = ref 0

let scratch_dir name =
  incr scratch_counter;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "wap_fleet_test_%d_%s_%d" (Unix.getpid ()) name
         !scratch_counter)
  in
  rm_rf d;
  mkdir_p d;
  d

let write_file path s =
  mkdir_p (Filename.dirname path);
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One shared on-disk corpus: 4 generated projects carrying the
   identical framework layer. *)
let corpus_root =
  lazy
    (let root = scratch_dir "corpus" in
     List.iter
       (fun (name, (pkg : Wap_corpus.Appgen.package)) ->
         List.iter
           (fun (f : Wap_corpus.Appgen.file) ->
             write_file
               (Filename.concat (Filename.concat root name)
                  f.Wap_corpus.Appgen.f_name)
               f.Wap_corpus.Appgen.f_source)
           pkg.Wap_corpus.Appgen.pkg_files)
       (Wap_corpus.Corpus.generated_projects ~seed:2016 ~count:4 ());
     root)

let fleet_config ?cache_dir ?(summary_store = false) workers =
  {
    Coordinator.fc_workers = workers;
    fc_worker_jobs = 1;
    fc_cache_dir = cache_dir;
    fc_summary_store = summary_store;
    fc_progress = false;
  }

let run_fleet ?cache_dir ?summary_store workers =
  Coordinator.run
    (fleet_config ?cache_dir ?summary_store workers)
    ~dirs:(Coordinator.discover [ Lazy.force corpus_root ])

(* ------------------------------------------------------------------ *)
(* Protocol.                                                           *)

let test_proto_roundtrip () =
  let cfg =
    { Proto.cfg_jobs = 3; cfg_cache_dir = Some "/tmp/c"; cfg_summary_store = true }
  in
  (match Proto.config_of_line (Proto.config_line cfg) with
  | Ok c -> Alcotest.(check bool) "config round-trips" true (c = cfg)
  | Error e -> Alcotest.failf "config: %s" e);
  let cfg2 = { Proto.cfg_jobs = 1; cfg_cache_dir = None; cfg_summary_store = false } in
  (match Proto.config_of_line (Proto.config_line cfg2) with
  | Ok c -> Alcotest.(check bool) "no-cache config round-trips" true (c = cfg2)
  | Error e -> Alcotest.failf "config2: %s" e);
  let job = { Proto.job_dir = "corpus/proj \"x\""; job_attempt = 2 } in
  (match Proto.job_of_line (Proto.job_line job) with
  | Ok j -> Alcotest.(check bool) "job round-trips (quoting)" true (j = job)
  | Error e -> Alcotest.failf "job: %s" e);
  let res =
    {
      (Worker.error_result job "worker died twice") with
      Proto.res_payload = Json.Obj [ ("k", Json.List [ Json.Int 1 ]) ];
      res_ok = true;
      res_seconds = 0.25;
      res_cache_hits = 7;
    }
  in
  match Proto.result_of_line (Proto.result_line res) with
  | Ok r -> Alcotest.(check bool) "result round-trips" true (r = res)
  | Error e -> Alcotest.failf "result: %s" e

let test_proto_torn_line () =
  let line = Proto.result_line (Worker.error_result { Proto.job_dir = "d"; job_attempt = 1 } "x") in
  let torn = String.sub line 0 (String.length line / 2) in
  (match Proto.result_of_line torn with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a torn result line must not parse");
  match Proto.job_of_line "{\"dir\": 3}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a mistyped job line must not parse"

(* ------------------------------------------------------------------ *)
(* Discovery and the walk order.                                       *)

let test_discover () =
  let root = scratch_dir "discover" in
  List.iter
    (fun p -> write_file (Filename.concat root p) "<?php\n")
    [ "b_proj/index.php"; "a_proj/index.php"; "c_proj/sub/x.php" ];
  write_file (Filename.concat root "README.md") "not a project\n";
  let dirs = Coordinator.discover [ root ] in
  Alcotest.(check (list string))
    "subdirectories, sorted"
    [ Filename.concat root "a_proj";
      Filename.concat root "b_proj";
      Filename.concat root "c_proj" ]
    dirs;
  let leaf = Filename.concat root "a_proj" in
  Alcotest.(check (list string)) "a leaf root is itself a project" [ leaf ]
    (Coordinator.discover [ leaf ]);
  match Coordinator.discover [ Filename.concat root "README.md" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "a non-directory root must be rejected"

let test_php_files_sorted_relative () =
  let dir = scratch_dir "walk" in
  List.iter
    (fun p -> write_file (Filename.concat dir p) "<?php\n")
    [ "zz.php"; "lib/b.php"; "lib/a.php"; "_shared/core.php"; "notes.txt" ]
  ;
  Alcotest.(check (list string))
    "relative, sorted at every level, underscore prefix first"
    [ "_shared/core.php"; "lib/a.php"; "lib/b.php"; "zz.php" ]
    (Worker.php_files dir)

(* ------------------------------------------------------------------ *)
(* Merge determinism and the summary store.                            *)

let test_merge_determinism () =
  let o1 = run_fleet ~cache_dir:(scratch_dir "det1") ~summary_store:true 1 in
  let o2 = run_fleet ~cache_dir:(scratch_dir "det2") ~summary_store:true 2 in
  let o2b = run_fleet 2 (* in-memory caches only *) in
  Alcotest.(check (list string))
    "1 worker and 2 workers merge byte-identically"
    (Coordinator.merged_lines o1) (Coordinator.merged_lines o2);
  Alcotest.(check (list string))
    "cache temperature does not leak into the merge"
    (Coordinator.merged_lines o1) (Coordinator.merged_lines o2b);
  Alcotest.(check int) "every project scanned" 4
    o2.Coordinator.report.Coordinator.rp_projects;
  Alcotest.(check (list string)) "none failed" []
    o2.Coordinator.report.Coordinator.rp_failed

let test_summary_store_dedup () =
  let o = run_fleet ~cache_dir:(scratch_dir "dedup") ~summary_store:true 2 in
  let rp = o.Coordinator.report in
  Alcotest.(check bool) "shared framework layer deduplicates" true
    (rp.Coordinator.rp_cache_hits > 0);
  Alcotest.(check bool) "dedup hit ratio > 0" true
    (rp.Coordinator.rp_dedup_hit_ratio > 0.)

let test_worker_death_retry () =
  let clean = run_fleet 2 in
  Unix.putenv Worker.crash_env "proj_001";
  let crashed =
    Fun.protect
      ~finally:(fun () -> Unix.putenv Worker.crash_env "")
      (fun () -> run_fleet 2)
  in
  let rp = crashed.Coordinator.report in
  Alcotest.(check int) "one first-attempt death recovered" 1
    rp.Coordinator.rp_retried;
  Alcotest.(check (list string)) "no project failed" []
    rp.Coordinator.rp_failed;
  Alcotest.(check (list string))
    "output identical despite the killed worker"
    (Coordinator.merged_lines clean)
    (Coordinator.merged_lines crashed)

let test_worker_death_after_retry () =
  Unix.putenv Worker.crash_env "proj_001:always";
  let o =
    Fun.protect
      ~finally:(fun () -> Unix.putenv Worker.crash_env "")
      (fun () -> run_fleet 2)
  in
  let rp = o.Coordinator.report in
  Alcotest.(check (list string))
    "the doomed project is reported failed" [ "proj_001" ]
    rp.Coordinator.rp_failed;
  Alcotest.(check int) "its first death still counts as a retry" 1
    rp.Coordinator.rp_retried;
  Alcotest.(check int) "the other projects still complete: 3 merged lines" 3
    (List.length (Coordinator.merged_lines o));
  let failed =
    List.find
      (fun r -> not r.Proto.res_ok)
      o.Coordinator.results
  in
  Alcotest.(check string) "failure is attributed" "proj_001"
    failed.Proto.res_project

(* ------------------------------------------------------------------ *)
(* The hardened shared disk cache.                                     *)

let entry_file dir key = Filename.concat dir (key ^ ".wapc")

let test_cache_two_handles_share_dir () =
  let dir = scratch_dir "cache_share" in
  let a = Cache.create ~dir () and b = Cache.create ~dir () in
  let key = Cache.key [ "test"; "shared-entry" ] in
  Cache.store a ~key [ 1; 2; 3 ];
  (match (Cache.find b ~key : int list option) with
  | Some v -> Alcotest.(check (list int)) "b reads a's entry" [ 1; 2; 3 ] v
  | None -> Alcotest.fail "second handle missed a persisted entry");
  Alcotest.(check int) "counted as a hit on b" 1 (Cache.hits b);
  (* concurrent store/find on one directory from two domains *)
  let keys = List.init 32 (fun i -> Cache.key [ "test"; "race"; string_of_int i ]) in
  let writer h = Domain.spawn (fun () -> List.iter (fun k -> Cache.store h ~key:k (String.length k)) keys) in
  let d1 = writer a and d2 = writer b in
  Domain.join d1;
  Domain.join d2;
  let c = Cache.create ~dir () in
  List.iter
    (fun k ->
      match (Cache.find c ~key:k : int option) with
      | Some v -> Alcotest.(check int) "racing writers agree" (String.length k) v
      | None -> Alcotest.fail "entry lost in the race")
    keys

let test_cache_truncated_entry_is_a_miss () =
  let dir = scratch_dir "cache_trunc" in
  let key = Cache.key [ "test"; "truncated" ] in
  let w = Cache.create ~dir () in
  Cache.store w ~key "precious";
  let path = entry_file dir key in
  Alcotest.(check bool) "entry persisted" true (Sys.file_exists path);
  (* a crash mid-write can only ever leave a truncated file if the
     rename discipline is broken — simulate the broken state directly *)
  let whole = read_file path in
  write_file path (String.sub whole 0 (String.length whole - 3));
  let r = Cache.create ~dir () in
  (match (Cache.find r ~key : string option) with
  | None -> ()
  | Some _ -> Alcotest.fail "truncated entry must read as a miss");
  Alcotest.(check int) "counted as a miss" 1 (Cache.misses r);
  Alcotest.(check bool) "poisoned file deleted" false (Sys.file_exists path);
  (* and the slot is usable again *)
  Cache.store r ~key "recomputed";
  match (Cache.find (Cache.create ~dir ()) ~key : string option) with
  | Some v -> Alcotest.(check string) "recomputed value persists" "recomputed" v
  | None -> Alcotest.fail "slot unusable after recovery"

let test_cache_corrupted_and_foreign_entries () =
  let dir = scratch_dir "cache_corrupt" in
  let key = Cache.key [ "test"; "corrupted" ] in
  let w = Cache.create ~dir () in
  Cache.store w ~key 42;
  let path = entry_file dir key in
  let whole = Bytes.of_string (read_file path) in
  Bytes.set whole (Bytes.length whole - 1)
    (Char.chr (Char.code (Bytes.get whole (Bytes.length whole - 1)) lxor 0xff));
  write_file path (Bytes.to_string whole);
  (match (Cache.find (Cache.create ~dir ()) ~key : int option) with
  | None -> ()
  | Some _ -> Alcotest.fail "bit-flipped entry must read as a miss");
  let foreign = Cache.key [ "test"; "foreign" ] in
  write_file (entry_file dir foreign) "not a cache entry at all\n";
  (match (Cache.find (Cache.create ~dir ()) ~key:foreign : int option) with
  | None -> ()
  | Some _ -> Alcotest.fail "foreign file must read as a miss");
  Alcotest.(check bool) "foreign file deleted" false
    (Sys.file_exists (entry_file dir foreign))

let test_cache_invalidate () =
  let dir = scratch_dir "cache_inval" in
  let key = Cache.key [ "test"; "inval" ] in
  let c = Cache.create ~dir () in
  Cache.store c ~key "v";
  Cache.invalidate c ~key;
  (match (Cache.find c ~key : string option) with
  | None -> ()
  | Some _ -> Alcotest.fail "invalidated entry still readable");
  Alcotest.(check bool) "disk entry removed" false
    (Sys.file_exists (entry_file dir key))

(* ------------------------------------------------------------------ *)
(* The admin plane's short-write loop.                                 *)

let test_http_write_all_socketpair () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* a payload far larger than any socket buffer forces short writes *)
  let payload = String.init (4 * 1024 * 1024) (fun i -> Char.chr (i land 0xff)) in
  let reader =
    Domain.spawn (fun () ->
        let buf = Buffer.create (String.length payload) in
        let chunk = Bytes.create 65536 in
        let rec drain () =
          match Unix.read b chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
        in
        drain ();
        Buffer.contents buf)
  in
  Wap_serve.Http.write_all a payload;
  Unix.close a;
  let received = Domain.join reader in
  Unix.close b;
  Alcotest.(check int) "every byte arrives" (String.length payload)
    (String.length received);
  Alcotest.(check bool) "bytes arrive unmangled" true (received = payload)

let test_http_write_all_epipe () =
  let previous = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.signal Sys.sigpipe previous))
    (fun () ->
      let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.close b;
      match
        Wap_serve.Http.write_all a (String.make (8 * 1024 * 1024) 'x')
      with
      | () -> Alcotest.fail "writing to a closed peer must raise"
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          Unix.close a)

(* ------------------------------------------------------------------ *)
(* Fuzz replay order.                                                  *)

let test_replay_sorted_order () =
  let dir = scratch_dir "seeds" in
  (* created deliberately out of name order: replay must not depend on
     the file system's directory order *)
  List.iter
    (fun f -> write_file (Filename.concat dir f) "<?php echo 1;\n")
    [ "zz_last.php"; "aa_first.php"; "mm_middle.php"; "ignored.txt" ];
  let order = ref [] in
  let recorder =
    {
      Wap_fuzz.Oracle.name = "order-recorder";
      describe = "records replay order";
      check =
        (fun _ case ->
          order := case.Wap_fuzz.Oracle.source :: !order;
          Wap_fuzz.Oracle.Fail "record");
    }
  in
  let report = Wap_fuzz.Driver.replay ~oracles:[ recorder ] dir in
  Alcotest.(check int) "three .php seeds replayed" 3 report.Wap_fuzz.Driver.cases;
  Alcotest.(check (list (option string)))
    "failures land in sorted seed order"
    [ Some (Filename.concat dir "aa_first.php");
      Some (Filename.concat dir "mm_middle.php");
      Some (Filename.concat dir "zz_last.php") ]
    (List.map
       (fun f -> f.Wap_fuzz.Driver.fl_seed_file)
       report.Wap_fuzz.Driver.failures)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "wap_fleet"
    [
      ( "proto",
        [
          Alcotest.test_case "round-trips" `Quick test_proto_roundtrip;
          Alcotest.test_case "torn lines never parse" `Quick
            test_proto_torn_line;
        ] );
      ( "discovery",
        [
          Alcotest.test_case "roots expand to sorted projects" `Quick
            test_discover;
          Alcotest.test_case "walk is sorted and relative" `Quick
            test_php_files_sorted_relative;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "merge is byte-deterministic" `Slow
            test_merge_determinism;
          Alcotest.test_case "summary store dedups the shared layer" `Slow
            test_summary_store_dedup;
          Alcotest.test_case "a killed worker is retried" `Slow
            test_worker_death_retry;
          Alcotest.test_case "a twice-killed worker fails its project" `Slow
            test_worker_death_after_retry;
        ] );
      ( "cache",
        [
          Alcotest.test_case "two handles share one directory" `Quick
            test_cache_two_handles_share_dir;
          Alcotest.test_case "truncated entry is a miss" `Quick
            test_cache_truncated_entry_is_a_miss;
          Alcotest.test_case "corrupted and foreign entries are misses" `Quick
            test_cache_corrupted_and_foreign_entries;
          Alcotest.test_case "invalidate drops memory and disk" `Quick
            test_cache_invalidate;
        ] );
      ( "http",
        [
          Alcotest.test_case "write_all survives short writes" `Quick
            test_http_write_all_socketpair;
          Alcotest.test_case "write_all raises on a dead peer" `Quick
            test_http_write_all_epipe;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "seed replay is sorted" `Quick
            test_replay_sorted_order;
        ] );
    ]
