(** Tests for the flow substrate: CFG shape, reachability, reaching
    definitions and liveness. *)

module Cfg = Wap_flow.Cfg
module Reach = Wap_flow.Reach
module Reaching = Wap_flow.Reaching
module Live = Wap_flow.Live
module Scope = Wap_flow.Scope

let parse src = Wap_php.Parser.parse_string ~file:"t.php" ("<?php\n" ^ src)
let cfg_of src = Cfg.of_stmts (parse src)

(* is some non-empty block unreachable? *)
let has_dead_block cfg =
  let reach = Cfg.reachable cfg in
  Array.exists
    (fun (b : Cfg.block) -> (not reach.(b.Cfg.bid)) && b.Cfg.elems <> [])
    cfg.Cfg.blocks

(* ------------------------------------------------------------------ *)
(* CFG shape.                                                          *)

let test_straight_line () =
  let cfg = cfg_of "$a = 1;\n$b = 2;\necho $a;" in
  Alcotest.(check bool) "no dead code" false (has_dead_block cfg);
  Alcotest.(check bool)
    "exit reachable" true
    (Cfg.reachable cfg).(cfg.Cfg.exit_)

let test_if_branches () =
  let cfg = cfg_of "if ($c) { $a = 1; } else { $a = 2; }\necho $a;" in
  (* some block ends in a two-way branch *)
  let branching =
    Array.exists
      (fun (b : Cfg.block) ->
        List.length (List.sort_uniq compare b.Cfg.succs) >= 2)
      cfg.Cfg.blocks
  in
  Alcotest.(check bool) "has a branch" true branching;
  Alcotest.(check bool) "no dead code" false (has_dead_block cfg)

let test_while_back_edge () =
  let cfg = cfg_of "$i = 0;\nwhile ($i < 3) { $i = $i + 1; }\necho $i;" in
  (* a loop has an edge to an earlier block *)
  let back_edge =
    Array.exists
      (fun (b : Cfg.block) -> List.exists (fun s -> s <= b.Cfg.bid) b.Cfg.succs)
      cfg.Cfg.blocks
  in
  Alcotest.(check bool) "has a back edge" true back_edge;
  Alcotest.(check bool) "no dead code" false (has_dead_block cfg)

(* ------------------------------------------------------------------ *)
(* Reachability.                                                       *)

let test_code_after_exit_dead () =
  Alcotest.(check bool) "echo after exit is dead" true
    (has_dead_block (cfg_of "exit;\necho \"x\";"));
  Alcotest.(check bool) "echo after die is dead" true
    (has_dead_block (cfg_of "die(\"bye\");\necho \"x\";"))

let test_code_after_return_dead () =
  Alcotest.(check bool) "stmt after return is dead" true
    (has_dead_block (cfg_of "return 1;\n$a = 2;"))

let test_code_after_break_dead () =
  Alcotest.(check bool) "stmt after break is dead" true
    (has_dead_block (cfg_of "while ($c) { break;\n$a = 1; }"))

let test_both_branches_terminate () =
  Alcotest.(check bool) "join after exiting if/else is dead" true
    (has_dead_block (cfg_of "if ($c) { exit; } else { return; }\necho \"x\";"));
  Alcotest.(check bool) "join after one-armed if stays live" false
    (has_dead_block (cfg_of "if ($c) { exit; }\necho \"x\";"))

let test_infinite_for_dead_exit () =
  let cfg = cfg_of "for (;;) { $a = 1; }\necho \"after\";" in
  Alcotest.(check bool) "code after for(;;) is dead" true (has_dead_block cfg)

let test_conditional_exit_live () =
  Alcotest.(check bool) "code after a guarded exit stays live" false
    (has_dead_block (cfg_of "if ($c) { exit; }\nmysql_query($q);"))

let test_switch_dead_after_exit_in_case () =
  Alcotest.(check bool) "stmt after exit inside a case is dead" true
    (has_dead_block
       (cfg_of "switch ($x) {\ncase 1:\nexit;\necho \"a\";\n}"))

(* ------------------------------------------------------------------ *)
(* Reaching definitions.                                               *)

let defs_of_var reaching cfg v =
  Reaching.Set.elements (Reaching.reaching_in reaching cfg.Cfg.exit_)
  |> List.filter (fun (v', _) -> v' = v)
  |> List.length

let test_reaching_join () =
  let cfg = cfg_of "$a = 1;\nif ($c) { $a = 2; }\necho $a;" in
  let r = Reaching.analyze cfg in
  Alcotest.(check int) "two defs of $a reach the end" 2 (defs_of_var r cfg "a")

let test_reaching_strong_kill () =
  let cfg = cfg_of "$a = 1;\n$a = 2;\necho $a;" in
  let r = Reaching.analyze cfg in
  Alcotest.(check int) "second def kills the first" 1 (defs_of_var r cfg "a")

let test_reaching_unset_kills () =
  let cfg = cfg_of "$a = 1;\nunset($a);" in
  let r = Reaching.analyze cfg in
  Alcotest.(check int) "unset leaves no def" 0 (defs_of_var r cfg "a")

let test_reaching_weak_accumulates () =
  let cfg = cfg_of "$a = array();\n$a[0] = 1;\necho $a;" in
  let r = Reaching.analyze cfg in
  Alcotest.(check int) "container update accumulates" 2 (defs_of_var r cfg "a")

let test_reaching_params () =
  let cfg = cfg_of "echo $p;" in
  let r = Reaching.analyze ~params:[ "p" ] cfg in
  Alcotest.(check bool) "parameter is defined at entry" true
    (Reaching.defines (Reaching.reaching_in r cfg.Cfg.exit_) "p")

let test_switch_fallthrough_reaches () =
  (* $a defined in case 1 reaches case 2 through the fallthrough edge *)
  let cfg =
    cfg_of "switch ($x) {\ncase 1:\n$a = 1;\ncase 2:\necho $a;\n}"
  in
  let r = Reaching.analyze cfg in
  let reaches_echo = ref false in
  Array.iter
    (fun (b : Cfg.block) ->
      Reaching.fold_block r b.Cfg.bid ~init:() ~f:(fun () defs elem ->
          match elem with
          | Cfg.Elem_stmt { Wap_php.Ast.s = Wap_php.Ast.Echo _; _ } ->
              if Reaching.defines defs "a" then reaches_echo := true
          | _ -> ()))
    cfg.Cfg.blocks;
  Alcotest.(check bool) "fallthrough carries the definition" true !reaches_echo

(* ------------------------------------------------------------------ *)
(* Liveness.                                                           *)

let live_at_entry src =
  let cfg = cfg_of src in
  Live.VarSet.elements (Live.live_in (Live.analyze cfg) cfg.Cfg.entry)

let test_liveness_undefined_use () =
  Alcotest.(check (list string)) "used-before-def is live at entry" [ "x" ]
    (live_at_entry "echo $x;")

let test_liveness_killed_by_def () =
  Alcotest.(check (list string)) "defined-then-used is not live at entry" []
    (live_at_entry "$x = 1;\necho $x;")

let test_liveness_through_loop () =
  Alcotest.(check (list string)) "loop-carried use stays live" [ "n" ]
    (live_at_entry "while ($n > 0) { $n = $n - 1; }")

(* ------------------------------------------------------------------ *)
(* Scopes and the dead-location oracle.                                *)

let test_scope_split () =
  let prog = parse "function f($p) { return $p; }\n$x = 1;" in
  match Scope.of_program prog with
  | [ top; fn ] ->
      Alcotest.(check bool) "top level is anonymous" true (top.Scope.name = None);
      Alcotest.(check (option string)) "function scope" (Some "f") fn.Scope.name;
      Alcotest.(check (list string)) "params" [ "p" ] fn.Scope.params
  | scopes ->
      Alcotest.failf "expected 2 scopes, got %d" (List.length scopes)

let test_dead_oracle () =
  let prog = parse "echo \"live\";\nexit;\necho \"dead\";" in
  let stmts = Array.of_list prog in
  let loc_of i = stmts.(i).Wap_php.Ast.sloc in
  let dead = Reach.of_program prog in
  Alcotest.(check bool) "before exit: live" false (Reach.is_dead dead (loc_of 0));
  Alcotest.(check bool) "after exit: dead" true (Reach.is_dead dead (loc_of 2))

let test_dead_oracle_hoisted_function () =
  (* function declarations are hoisted: a body after exit is NOT dead *)
  let prog = parse "exit;\nfunction g() {\necho \"body\";\n}" in
  let dead = Reach.of_program prog in
  let body_loc =
    List.find_map
      (fun (s : Wap_php.Ast.stmt) ->
        match s.Wap_php.Ast.s with
        | Wap_php.Ast.Func_def f ->
            Some (List.hd f.Wap_php.Ast.f_body).Wap_php.Ast.sloc
        | _ -> None)
      prog
    |> Option.get
  in
  Alcotest.(check bool) "hoisted body stays live" false
    (Reach.is_dead dead body_loc)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "wap_flow"
    [
      ( "cfg",
        [
          Alcotest.test_case "straight line" `Quick test_straight_line;
          Alcotest.test_case "if branches" `Quick test_if_branches;
          Alcotest.test_case "while back edge" `Quick test_while_back_edge;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "after exit" `Quick test_code_after_exit_dead;
          Alcotest.test_case "after return" `Quick test_code_after_return_dead;
          Alcotest.test_case "after break" `Quick test_code_after_break_dead;
          Alcotest.test_case "terminating if/else" `Quick
            test_both_branches_terminate;
          Alcotest.test_case "infinite for" `Quick test_infinite_for_dead_exit;
          Alcotest.test_case "guarded exit" `Quick test_conditional_exit_live;
          Alcotest.test_case "exit inside case" `Quick
            test_switch_dead_after_exit_in_case;
        ] );
      ( "reaching",
        [
          Alcotest.test_case "join" `Quick test_reaching_join;
          Alcotest.test_case "strong kill" `Quick test_reaching_strong_kill;
          Alcotest.test_case "unset" `Quick test_reaching_unset_kills;
          Alcotest.test_case "weak update" `Quick test_reaching_weak_accumulates;
          Alcotest.test_case "params" `Quick test_reaching_params;
          Alcotest.test_case "switch fallthrough" `Quick
            test_switch_fallthrough_reaches;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "undefined use" `Quick test_liveness_undefined_use;
          Alcotest.test_case "killed by def" `Quick test_liveness_killed_by_def;
          Alcotest.test_case "through loop" `Quick test_liveness_through_loop;
        ] );
      ( "scopes",
        [
          Alcotest.test_case "scope split" `Quick test_scope_split;
          Alcotest.test_case "dead oracle" `Quick test_dead_oracle;
          Alcotest.test_case "hoisted function" `Quick
            test_dead_oracle_hoisted_function;
        ] );
    ]
