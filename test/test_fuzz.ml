(** The fuzzing harness itself: PRNG and generator determinism, the
    shrinker's contract, replay of the checked-in regression seeds, and
    a small bounded fuzz run with every oracle armed. *)

open Wap_php
module Rng = Wap_fuzz.Rng
module Gen = Wap_fuzz.Gen
module Shrink = Wap_fuzz.Shrink
module Oracle = Wap_fuzz.Oracle
module Driver = Wap_fuzz.Driver

let tool = lazy (Wap_core.Tool.create ~seed:2016 Wap_core.Version.Wape)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* PRNG.                                                               *)

let test_rng_deterministic () =
  let seq seed = List.init 64 (fun _ -> Rng.bits (Rng.create ~seed)) in
  let a = Rng.create ~seed:99 and b = Rng.create ~seed:99 in
  Alcotest.(check (list int))
    "same seed, same stream"
    (List.init 64 (fun _ -> Rng.bits a))
    (List.init 64 (fun _ -> Rng.bits b));
  Alcotest.(check bool)
    "different seeds diverge" false
    (seq 1 = seq 2)

let test_rng_ranges () =
  let t = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let n = Rng.int t 10 in
    Alcotest.(check bool) "int in [0,10)" true (n >= 0 && n < 10);
    let r = Rng.range t (-3) 3 in
    Alcotest.(check bool) "range inclusive" true (r >= -3 && r <= 3)
  done

(* ------------------------------------------------------------------ *)
(* Generator.                                                          *)

let test_gen_deterministic () =
  List.iter
    (fun i ->
      let src c = c.Oracle.source in
      Alcotest.(check string)
        (Printf.sprintf "case %d regenerates byte-identically" i)
        (src (Driver.case_at ~seed:42 ~max_stmts:10 i))
        (src (Driver.case_at ~seed:42 ~max_stmts:10 i)))
    [ 0; 1; 17; 125; 499 ]

let test_gen_programs_parse () =
  (* every AST-backed case must parse: the generator only emits
     canonical shapes *)
  for i = 0 to 63 do
    let case = Driver.case_at ~seed:2016 ~max_stmts:10 i in
    match case.Oracle.gen_ast with
    | None -> ()  (* spiced raw source; totality is oracle 1's job *)
    | Some _ ->
        let prog = Parser.parse_string ~file:"gen.php" case.Oracle.source in
        Alcotest.(check bool)
          (Printf.sprintf "case %d parses to a non-degenerate program" i)
          true
          (List.length prog >= 0)
  done

(* ------------------------------------------------------------------ *)
(* Shrinker.                                                           *)

let test_shrink_source () =
  let fails src = contains ~needle:"needle" src in
  let source =
    "<?php\n$a = 1;\n$b = 2;\necho 'needle';\n$c = 3;\n$d = 4;\n$e = 5;\n"
  in
  let shrunk = Shrink.source ~fails source in
  Alcotest.(check bool) "shrunk input still fails" true (fails shrunk);
  Alcotest.(check bool)
    "shrunk no larger" true
    (String.length shrunk <= String.length source);
  (* line-based ddmin keeps the <?php line and the needle line only *)
  let lines = String.split_on_char '\n' (String.trim shrunk) in
  Alcotest.(check int) "minimal: two lines survive" 2 (List.length lines)

let test_shrink_program () =
  let prog =
    Ast.
      [
        mk_s (Expr_stmt (mk_e (Assign (A_eq, var "a", int_ 1))));
        mk_s (Expr_stmt (mk_e (Assign (A_eq, var "b", int_ 2))));
        mk_s
          (If
             ( [ (var "b", [ mk_s (Echo [ mk_e (Var "_GET") ]) ]) ],
               Some [ mk_s (Expr_stmt (mk_e (Assign (A_eq, var "c", int_ 3)))) ]
             ));
        mk_s (Expr_stmt (call "strlen" [ var "a" ]));
      ]
  in
  let fails p =
    contains ~needle:"$_GET" (Printer.program_to_string p)
  in
  Alcotest.(check bool) "original fails" true (fails prog);
  let shrunk = Shrink.program ~fails prog in
  Alcotest.(check bool) "shrunk program still fails" true (fails shrunk);
  Alcotest.(check bool)
    "if-branch unwrapped to a single statement" true
    (Visitor.stmt_count shrunk <= 2)

(* ------------------------------------------------------------------ *)
(* Seeds and the loop.                                                 *)

let test_replay_seeds () =
  let report = Driver.replay ~tool:(Lazy.force tool) "fuzz_seeds" in
  Alcotest.(check bool)
    "at least the seven pinned reproducers present" true (report.cases >= 7);
  List.iter
    (fun (f : Driver.failure) ->
      Alcotest.failf "seed %s violates %s: %s"
        (Option.value ~default:"?" f.fl_seed_file)
        f.fl_oracle f.fl_message)
    report.failures

let test_bounded_fuzz () =
  let config =
    {
      Driver.default_config with
      Driver.seed = 2016;
      iterations = 150;
      out_seed_dir = None;
    }
  in
  let report = Driver.run ~tool:(Lazy.force tool) config in
  Alcotest.(check int) "all cases checked" 150 report.Driver.cases;
  List.iter
    (fun (f : Driver.failure) ->
      Alcotest.failf "iteration %d violates %s: %s\n%s" f.fl_iteration
        f.fl_oracle f.fl_message f.fl_source)
    report.Driver.failures

let () =
  Alcotest.run "wap_fuzz"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_rng_deterministic;
          Alcotest.test_case "bounded draws" `Quick test_rng_ranges;
        ] );
      ( "gen",
        [
          Alcotest.test_case "byte-identical regeneration" `Quick
            test_gen_deterministic;
          Alcotest.test_case "canonical programs parse" `Quick
            test_gen_programs_parse;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "source ddmin minimal + still failing" `Quick
            test_shrink_source;
          Alcotest.test_case "program shrink minimal + still failing" `Quick
            test_shrink_program;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "checked-in seeds replay clean" `Slow
            test_replay_seeds;
          Alcotest.test_case "bounded fuzz run, all oracles" `Slow
            test_bounded_fuzz;
        ] );
    ]
