(** The three-address IR path (Wap_ir): lowering + execution must be
    byte-identical to the AST walker on every input — committed fuzz
    seeds, the synthetic corpus, and edge constructs picked to stress
    the lowering (operator associativity, interpolation, literal
    bounds).  Plus the [wap ir --dump] renderings and the WAP_IR
    environment gate. *)

module T = Wap_core.Tool
module Scan = Wap_core.Scan
module Cat = Wap_catalog.Catalog

let seed = 2016
let wape = lazy (T.create ~seed Wap_core.Version.Wape)

let zero_timings (r : T.package_result) =
  {
    r with
    T.analysis_seconds = 0.0;
    analysis_cpu_seconds = 0.0;
    phase_seconds = List.map (fun (k, _) -> (k, 0.0)) r.phase_seconds;
  }

(* Canonical export of one scan: timings zeroed so the comparison is
   about candidates, flows and predictions only. *)
let export ~ir files =
  let o = Scan.run (Lazy.force wape) (Scan.request ~jobs:1 ~ir files) in
  Wap_core.Export.result_to_string (zero_timings o.Scan.result)

let check_equiv name files =
  Alcotest.(check string)
    (name ^ ": IR export = AST-walker export")
    (export ~ir:false files) (export ~ir:true files)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Equivalence on committed reproducers and the corpus.                *)

let test_fuzz_seeds_equiv () =
  let seeds =
    Sys.readdir "fuzz_seeds" |> Array.to_list |> List.sort String.compare
    |> List.filter (fun f -> Filename.check_suffix f ".php")
  in
  Alcotest.(check bool)
    "at least the seven pinned reproducers present" true
    (List.length seeds >= 7);
  List.iter
    (fun f ->
      let path = Filename.concat "fuzz_seeds" f in
      check_equiv f [ (path, read_file path) ])
    seeds

let test_corpus_equiv () =
  (* the three seeded-vulnerable webapps exercise every detector class *)
  List.iteri
    (fun i profile ->
      let pkg = Wap_corpus.Appgen.of_webapp_profile ~seed profile in
      let files =
        List.map
          (fun (f : Wap_corpus.Appgen.file) ->
            (f.Wap_corpus.Appgen.f_name, f.Wap_corpus.Appgen.f_source))
          pkg.Wap_corpus.Appgen.pkg_files
      in
      check_equiv (Printf.sprintf "webapp %d" i) files)
    (List.filteri (fun i _ -> i < 3) Wap_corpus.Profiles.vulnerable_webapps)

let test_merged_packages_equiv () =
  (* one request spanning several generated packages; the profile list
     repeats package names, so the merged file list contains duplicate
     paths with different contents — a regression test for the lowering
     memo, which must key on content, not path *)
  let files =
    List.concat_map
      (fun profile ->
        let pkg = Wap_corpus.Appgen.of_webapp_profile ~seed profile in
        List.map
          (fun (f : Wap_corpus.Appgen.file) ->
            ( Filename.concat pkg.Wap_corpus.Appgen.pkg_name
                f.Wap_corpus.Appgen.f_name,
              f.Wap_corpus.Appgen.f_source ))
          pkg.Wap_corpus.Appgen.pkg_files)
      (List.filteri (fun i _ -> i < 4) Wap_corpus.Profiles.vulnerable_webapps)
  in
  let paths = List.map fst files in
  Alcotest.(check bool)
    "the merged corpus really repeats paths" true
    (List.length (List.sort_uniq String.compare paths) < List.length paths);
  check_equiv "merged 4-package app" files;
  (* a second scan in the same process answers from the lowering memo *)
  check_equiv "merged 4-package app, memo warm" files

(* ------------------------------------------------------------------ *)
(* Edge constructs: associativity, nesting and literal bounds the
   lowering must linearize in exactly the walker's evaluation order.   *)

let edge_programs =
  [
    ( "left-nested coalesce",
      "<?php $a = $_GET['a'] ?? $_GET['b'] ?? 'x'; echo $a; ?>" );
    ( "right-nested power",
      "<?php $n = 2 ** 3 ** 2; $q = $_GET['q'] ?? $n; echo $q; ?>" );
    ( "nested unary sign",
      "<?php $x = - - + -1; $y = $_POST['y']; echo $x . $y; ?>" );
    ( "interpolation with subscript",
      "<?php $u = $_GET['u']; echo \"hello $u and {$_POST['v']} end\"; ?>" );
    ( "interpolated array variable",
      "<?php $a['k'] = $_GET['k']; echo \"got {$a['k']}!\"; ?>" );
    ( "huge int literal",
      "<?php $big = 999999999999999999999999; echo $big; $t = $_GET['t']; \
       mysql_query($t . 9223372036854775807); ?>" );
    ( "ternary chain with guards",
      "<?php $v = isset($_GET['v']) ? $_GET['v'] : ''; echo $v ?: 'none'; ?>" );
    ( "compound concat through loop",
      "<?php $s = ''; for ($i = 0; $i < 3; $i++) { $s .= $_GET['p']; } \
       echo $s; ?>" );
  ]

let test_edge_constructs () =
  List.iter
    (fun (name, src) -> check_equiv name [ ("edge.php", src) ])
    edge_programs

(* ------------------------------------------------------------------ *)
(* The dump renderings.                                                *)

let lower_source src =
  let program, _errs =
    Wap_php.Parser.parse_string_tolerant ~file:"dump.php" src
  in
  let specs =
    Cat.specs_for (Wap_core.Version.classes Wap_core.Version.Wape)
  in
  Wap_ir.Lower.program ~specs:(Array.of_list specs)
    ~lookup:(Cat.Lookup.of_specs specs) program

let test_dump_text () =
  let body =
    lower_source "<?php $c = $_GET['cmd']; if ($c) { echo $c; } ?>"
  in
  let s = Wap_ir.Dump.to_string body in
  let contains needle =
    let n = String.length needle and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "names the entry block" true (contains "b0");
  Alcotest.(check bool) "numbers temporaries" true (contains "t0");
  Alcotest.(check bool) "annotates the echo sink" true (contains "sink echo");
  Alcotest.(check bool)
    "annotates the superglobal source" true (contains "source")

let test_dump_json () =
  let body = lower_source "<?php echo $_GET['x'] . 'y'; ?>" in
  let s = Wap_report.Json.to_string (Wap_ir.Dump.to_json body) in
  match Wap_report.Json.of_string s with
  | Error m -> Alcotest.failf "dump JSON does not re-parse: %s" m
  | Ok j -> (
      match Wap_report.Json.member "blocks" j with
      | Some (Wap_report.Json.List (_ :: _)) -> ()
      | _ -> Alcotest.fail "dump JSON has no blocks array")

(* ------------------------------------------------------------------ *)
(* The WAP_IR environment gate.                                        *)

let test_default_ir_env () =
  let original = Sys.getenv_opt "WAP_IR" in
  let set v = Unix.putenv "WAP_IR" v in
  set "0";
  Alcotest.(check bool) "WAP_IR=0 disables" false (Wap_engine.Config.default_ir ());
  set "false";
  Alcotest.(check bool) "WAP_IR=false disables" false
    (Wap_engine.Config.default_ir ());
  set "off";
  Alcotest.(check bool) "WAP_IR=off disables" false
    (Wap_engine.Config.default_ir ());
  set "1";
  Alcotest.(check bool) "WAP_IR=1 enables" true (Wap_engine.Config.default_ir ());
  set "";
  Alcotest.(check bool) "empty enables" true (Wap_engine.Config.default_ir ());
  set (Option.value original ~default:"")

let test_request_defaults () =
  let original = Sys.getenv_opt "WAP_IR" in
  Unix.putenv "WAP_IR" "0";
  let req = Scan.request ~jobs:1 [ ("a.php", "<?php ?>") ] in
  Alcotest.(check bool) "request honours WAP_IR=0" false req.Scan.ir;
  let forced = Scan.request ~jobs:1 ~ir:true [ ("a.php", "<?php ?>") ] in
  Alcotest.(check bool) "?ir overrides the environment" true forced.Scan.ir;
  Unix.putenv "WAP_IR" (Option.value original ~default:"")

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "wap_ir"
    [
      ( "equivalence",
        [
          Alcotest.test_case "committed fuzz seeds, both paths" `Slow
            test_fuzz_seeds_equiv;
          Alcotest.test_case "seeded-vulnerable corpus, both paths" `Slow
            test_corpus_equiv;
          Alcotest.test_case "merged packages with repeated paths" `Slow
            test_merged_packages_equiv;
          Alcotest.test_case "edge constructs, both paths" `Quick
            test_edge_constructs;
        ] );
      ( "dump",
        [
          Alcotest.test_case "text rendering" `Quick test_dump_text;
          Alcotest.test_case "json rendering" `Quick test_dump_json;
        ] );
      ( "gate",
        [
          Alcotest.test_case "WAP_IR parsing" `Quick test_default_ir_env;
          Alcotest.test_case "request defaults" `Quick test_request_defaults;
        ] );
    ]
