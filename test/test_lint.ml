(** Tests for the lint pass: every built-in rule fires on a positive
    fixture and stays silent on the matching negative one. *)

module Rule = Wap_lint.Rule
module Lint = Wap_lint.Lint

let lint src : Rule.diag list =
  let program = Wap_php.Parser.parse_string ~file:"t.php" ("<?php\n" ^ src) in
  Lint.run ~file:"t.php" program

let fired rule src =
  List.length (List.filter (fun (d : Rule.diag) -> d.Rule.rule = rule) (lint src))

let check_fires rule src = Alcotest.(check bool) "fires" true (fired rule src > 0)
let check_silent rule src = Alcotest.(check int) "silent" 0 (fired rule src)

(* ------------------------------------------------------------------ *)
(* no-undef-var                                                        *)

let test_undef_var_fires () = check_fires "no-undef-var" "echo $never_set;"

let test_undef_var_silent_when_defined () =
  check_silent "no-undef-var" "$x = 1;\necho $x;"

let test_undef_var_silent_for_params () =
  check_silent "no-undef-var" "function f($p) { return $p; }"

let test_undef_var_silent_for_superglobals () =
  check_silent "no-undef-var" "echo $_GET['q'];"

let test_undef_var_silent_after_isset_probe () =
  check_silent "no-undef-var" "if (isset($maybe)) { echo $maybe; }"

let test_undef_var_fires_in_function () =
  check_fires "no-undef-var" "function f() { return $oops; }"

let test_undef_var_silent_on_one_path_def () =
  (* may-undefined on the else path: the rule reports it (no def on some
     path means no def in the may-analysis only when NO path defines) —
     defined on every path through the join stays silent *)
  check_silent "no-undef-var"
    "if ($_GET['c']) { $a = 1; } else { $a = 2; }\necho $a;"

(* ------------------------------------------------------------------ *)
(* no-unreachable                                                      *)

let test_unreachable_fires () = check_fires "no-unreachable" "exit;\necho \"x\";"

let test_unreachable_after_return () =
  check_fires "no-unreachable" "function f() { return 1;\necho \"x\"; }"

let test_unreachable_silent () =
  check_silent "no-unreachable" "if ($c) { exit; }\necho \"x\";"

let test_unreachable_silent_hoisted_fn () =
  check_silent "no-unreachable" "exit;\nfunction g() { echo \"ok\"; }"

(* ------------------------------------------------------------------ *)
(* no-dead-sanitizer                                                   *)

let test_dead_sanitizer_fires () =
  check_fires "no-dead-sanitizer"
    "$s = mysql_real_escape_string($_GET['q']);\n$s = \"other\";\nmysql_query($s);"

let test_dead_sanitizer_silent_when_used () =
  check_silent "no-dead-sanitizer"
    "$s = mysql_real_escape_string($_GET['q']);\nmysql_query($s);"

let test_dead_sanitizer_fires_when_dropped () =
  (* result never read at all *)
  check_fires "no-dead-sanitizer" "$s = htmlentities($_GET['q']);"

(* ------------------------------------------------------------------ *)
(* no-assign-in-cond                                                   *)

let test_assign_in_cond_fires () =
  check_fires "no-assign-in-cond" "if ($x = 1) { echo \"y\"; }"

let test_assign_in_cond_fires_in_bool_chain () =
  check_fires "no-assign-in-cond" "$y = 2;\nif ($y && ($x = 1)) { echo \"y\"; }"

let test_assign_in_cond_silent_on_comparison () =
  check_silent "no-assign-in-cond" "$x = 0;\nif ($x == 1) { echo \"y\"; }"

let test_assign_in_cond_silent_on_while_fetch () =
  (* the while($row = fetch()) idiom is deliberate *)
  check_silent "no-assign-in-cond"
    "$r = mysql_query(\"SELECT 1\");\nwhile ($row = mysql_fetch_assoc($r)) { echo \"y\"; }"

(* ------------------------------------------------------------------ *)
(* no-dead-sink                                                        *)

let test_dead_sink_fires () =
  check_fires "no-dead-sink" "exit;\nmysql_query($_GET['q']);"

let test_dead_sink_fires_on_echo () =
  check_fires "no-dead-sink" "return;\necho $x;"

let test_dead_sink_silent_when_live () =
  check_silent "no-dead-sink" "mysql_query($_GET['q']);"

(* ------------------------------------------------------------------ *)
(* Registry and driver.                                                *)

let test_custom_rule_registers () =
  let custom =
    {
      Rule.id = "test-always";
      doc = "fires once per file";
      check =
        (fun ctx ->
          [
            {
              Rule.rule = "test-always";
              severity = Rule.Info;
              loc = { Wap_php.Loc.file = ctx.Rule.file; line = 1; col = 0 };
              message = "hello";
            };
          ]);
    }
  in
  Rule.register custom;
  let n = fired "test-always" "echo \"x\";" in
  (* deregister by replacing with a silent rule to keep other tests clean *)
  Rule.register { custom with Rule.check = (fun _ -> []) };
  Alcotest.(check int) "custom rule ran" 1 n

let test_diags_sorted () =
  let locs =
    List.map
      (fun (d : Rule.diag) -> (d.Rule.loc.Wap_php.Loc.line, d.Rule.loc.Wap_php.Loc.col))
      (lint "echo $a;\necho $b;\nexit;\necho \"x\";")
  in
  Alcotest.(check bool) "sorted by location" true
    (locs = List.sort compare locs)

let test_rule_filter () =
  let program =
    Wap_php.Parser.parse_string ~file:"t.php" "<?php\nexit;\necho $q;"
  in
  let only_unreachable =
    Lint.run
      ~rules:
        (List.filter
           (fun (r : Rule.t) -> r.Rule.id = "no-unreachable")
           (Lint.all_rules ()))
      ~file:"t.php" program
  in
  Alcotest.(check bool) "only the selected rule reports" true
    (List.for_all
       (fun (d : Rule.diag) -> d.Rule.rule = "no-unreachable")
       only_unreachable
    && only_unreachable <> [])

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "wap_lint"
    [
      ( "no-undef-var",
        [
          Alcotest.test_case "fires" `Quick test_undef_var_fires;
          Alcotest.test_case "defined" `Quick test_undef_var_silent_when_defined;
          Alcotest.test_case "params" `Quick test_undef_var_silent_for_params;
          Alcotest.test_case "superglobals" `Quick
            test_undef_var_silent_for_superglobals;
          Alcotest.test_case "isset probe" `Quick
            test_undef_var_silent_after_isset_probe;
          Alcotest.test_case "in function" `Quick test_undef_var_fires_in_function;
          Alcotest.test_case "both-path def" `Quick
            test_undef_var_silent_on_one_path_def;
        ] );
      ( "no-unreachable",
        [
          Alcotest.test_case "fires" `Quick test_unreachable_fires;
          Alcotest.test_case "after return" `Quick test_unreachable_after_return;
          Alcotest.test_case "guarded" `Quick test_unreachable_silent;
          Alcotest.test_case "hoisted fn" `Quick test_unreachable_silent_hoisted_fn;
        ] );
      ( "no-dead-sanitizer",
        [
          Alcotest.test_case "overwritten" `Quick test_dead_sanitizer_fires;
          Alcotest.test_case "used" `Quick test_dead_sanitizer_silent_when_used;
          Alcotest.test_case "dropped" `Quick test_dead_sanitizer_fires_when_dropped;
        ] );
      ( "no-assign-in-cond",
        [
          Alcotest.test_case "fires" `Quick test_assign_in_cond_fires;
          Alcotest.test_case "bool chain" `Quick test_assign_in_cond_fires_in_bool_chain;
          Alcotest.test_case "comparison" `Quick
            test_assign_in_cond_silent_on_comparison;
          Alcotest.test_case "while fetch" `Quick
            test_assign_in_cond_silent_on_while_fetch;
        ] );
      ( "no-dead-sink",
        [
          Alcotest.test_case "fires" `Quick test_dead_sink_fires;
          Alcotest.test_case "echo" `Quick test_dead_sink_fires_on_echo;
          Alcotest.test_case "live" `Quick test_dead_sink_silent_when_live;
        ] );
      ( "driver",
        [
          Alcotest.test_case "custom rule" `Quick test_custom_rule_registers;
          Alcotest.test_case "sorted" `Quick test_diags_sorted;
          Alcotest.test_case "rule filter" `Quick test_rule_filter;
        ] );
    ]
