(** The observability substrate: monotonic clock, structured logger,
    span tracing (Chrome trace-event export), striped metrics, and the
    guarantee that tracing never changes scan results. *)

module Clock = Wap_obs.Clock
module Log = Wap_obs.Log
module Trace = Wap_obs.Trace
module Metrics = Wap_obs.Metrics
module Json = Wap_report.Json

(* ------------------------------------------------------------------ *)
(* Clock.                                                              *)

let test_clock_monotonic () =
  let prev = ref (Clock.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Clock.now_ns () in
    if t < !prev then
      Alcotest.failf "clock went backwards: %d after %d" t !prev;
    prev := t
  done;
  let t0 = Clock.now_ns () in
  Alcotest.(check bool) "elapsed is non-negative" true
    (Clock.elapsed_ns t0 >= 0)

let test_clock_units () =
  Alcotest.(check (float 1e-9)) "1.5us" 1.5 (Clock.ns_to_us 1_500);
  Alcotest.(check (float 1e-9)) "2.5s" 2.5 (Clock.ns_to_s 2_500_000_000)

(* ------------------------------------------------------------------ *)
(* Logger.                                                             *)

let with_captured_log f =
  let lines = ref [] in
  let saved_level = Log.level () and saved_format = Log.format () in
  Log.set_writer (fun line -> lines := line :: !lines);
  Fun.protect
    ~finally:(fun () ->
      Log.reset_writer ();
      Log.set_level saved_level;
      Log.set_format saved_format)
    (fun () ->
      f ();
      List.rev !lines)

let test_log_levels () =
  List.iter
    (fun l ->
      Alcotest.(check (option string))
        (Log.level_name l ^ " round-trips")
        (Some (Log.level_name l))
        (Option.map Log.level_name (Log.level_of_string (Log.level_name l))))
    [ Log.Debug; Log.Info; Log.Warn; Log.Error; Log.Quiet ];
  Alcotest.(check (option string)) "unknown level rejected" None
    (Option.map Log.level_name (Log.level_of_string "loud"));
  let lines =
    with_captured_log (fun () ->
        Log.set_level Log.Warn;
        Log.set_format Log.Text;
        Alcotest.(check bool) "debug disabled at warn" false (Log.enabled Log.Debug);
        Alcotest.(check bool) "error enabled at warn" true (Log.enabled Log.Error);
        Log.debug "invisible";
        Log.info "also invisible";
        Log.warn "visible warning";
        Log.error "visible error")
  in
  Alcotest.(check int) "only warn+error emitted" 2 (List.length lines);
  List.iter
    (fun line ->
      Alcotest.(check bool) "line ends with newline" true
        (String.length line > 0 && line.[String.length line - 1] = '\n'))
    lines

let test_log_text_fields () =
  let lines =
    with_captured_log (fun () ->
        Log.set_level Log.Info;
        Log.set_format Log.Text;
        Log.info "scan finished" ~fields:[ ("files", "12"); ("jobs", "4") ])
  in
  match lines with
  | [ line ] ->
      let has sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length line && (String.sub line i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "message present" true (has "scan finished");
      Alcotest.(check bool) "fields rendered" true (has "files=12");
      (* the level tag is padded to a fixed width: [info ] *)
      Alcotest.(check bool) "level tag present" true (has "[info")
  | ls -> Alcotest.failf "expected one line, got %d" (List.length ls)

let test_log_jsonl () =
  let lines =
    with_captured_log (fun () ->
        Log.set_level Log.Debug;
        Log.set_format Log.Json;
        Log.warn "odd \"input\"\n here" ~fields:[ ("path", "a\\b.php") ])
  in
  match lines with
  | [ line ] -> (
      match Json.of_string (String.trim line) with
      | Error e -> Alcotest.failf "JSONL line does not parse: %s" e
      | Ok doc ->
          Alcotest.(check (option string)) "level field" (Some "warn")
            (match Json.member "level" doc with
            | Some (Json.Str s) -> Some s
            | _ -> None);
          Alcotest.(check (option string)) "msg survives escaping"
            (Some "odd \"input\"\n here")
            (match Json.member "msg" doc with
            | Some (Json.Str s) -> Some s
            | _ -> None);
          Alcotest.(check (option string)) "field survives escaping"
            (Some "a\\b.php")
            (match Json.member "path" doc with
            | Some (Json.Str s) -> Some s
            | _ -> None);
          Alcotest.(check bool) "timestamp present" true
            (Json.member "ts" doc <> None))
  | ls -> Alcotest.failf "expected one line, got %d" (List.length ls)

(* ------------------------------------------------------------------ *)
(* Tracing.                                                            *)

let with_tracer f =
  let t = Trace.create () in
  Trace.set_global (Some t);
  Fun.protect ~finally:(fun () -> Trace.set_global None) (fun () -> f t)

let find_event evs name =
  match List.find_opt (fun (e : Trace.event) -> e.Trace.ev_name = name) evs with
  | Some e -> e
  | None -> Alcotest.failf "event %s not recorded" name

let test_span_nesting () =
  let evs =
    with_tracer (fun t ->
        Trace.with_span ~cat:"test" "outer" (fun () ->
            Trace.with_span ~cat:"test" "inner"
              ~args:[ ("k", "v") ]
              (fun () -> ignore (Sys.opaque_identity 1));
            Trace.instant ~cat:"test" "tick");
        Trace.events t)
  in
  Alcotest.(check int) "three events" 3 (List.length evs);
  let outer = find_event evs "outer" and inner = find_event evs "inner" in
  let tick = find_event evs "tick" in
  Alcotest.(check int) "outer at depth 0" 0 outer.Trace.ev_depth;
  Alcotest.(check int) "inner at depth 1" 1 inner.Trace.ev_depth;
  Alcotest.(check bool) "tick is an instant" true tick.Trace.ev_instant;
  Alcotest.(check bool) "span is not an instant" false outer.Trace.ev_instant;
  let ends (e : Trace.event) = e.Trace.ev_ts_ns + e.Trace.ev_dur_ns in
  Alcotest.(check bool) "child starts inside parent" true
    (inner.Trace.ev_ts_ns >= outer.Trace.ev_ts_ns);
  Alcotest.(check bool) "child ends inside parent" true
    (ends inner <= ends outer);
  Alcotest.(check (list (pair string string))) "args recorded"
    [ ("k", "v") ] inner.Trace.ev_args

let test_span_records_on_raise () =
  let evs =
    with_tracer (fun t ->
        (try
           Trace.with_span ~cat:"test" "failing" (fun () -> failwith "boom")
         with Failure _ -> ());
        Trace.events t)
  in
  Alcotest.(check int) "span recorded despite the raise" 1 (List.length evs);
  Alcotest.(check string) "it is the failing span" "failing"
    (List.hd evs).Trace.ev_name

let test_tracing_disabled_is_noop () =
  Trace.set_global None;
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  (* must not raise, must still run the thunk *)
  let r = Trace.with_span ~cat:"test" "ambient" (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk result returned" 42 r;
  Trace.instant ~cat:"test" "ambient-instant"

let test_chrome_json_well_formed () =
  let json =
    with_tracer (fun t ->
        Trace.with_span ~cat:"test" "outer" (fun () ->
            Trace.with_span ~cat:"test" "inner \"quoted\"" (fun () -> ()));
        Trace.instant ~cat:"test" "mark";
        Trace.to_chrome_json ~pid:1 t)
  in
  match Json.of_string json with
  | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  | Ok doc -> (
      match Option.bind (Json.member "traceEvents" doc) Json.to_list_opt with
      | None -> Alcotest.fail "no traceEvents array"
      | Some evs ->
          (* the three recorded events plus thread_name metadata *)
          Alcotest.(check bool) "at least four entries" true
            (List.length evs >= 4);
          let phases =
            List.filter_map
              (fun e ->
                match Json.member "ph" e with
                | Some (Json.Str s) -> Some s
                | _ -> None)
            evs
          in
          Alcotest.(check int) "every event has a phase" (List.length evs)
            (List.length phases);
          Alcotest.(check bool) "has complete events" true
            (List.mem "X" phases);
          Alcotest.(check bool) "has an instant event" true
            (List.mem "i" phases);
          Alcotest.(check bool) "has thread metadata" true
            (List.mem "M" phases);
          List.iter
            (fun e ->
              List.iter
                (fun k ->
                  if Json.member k e = None then
                    Alcotest.failf "event missing %S: %s" k
                      (Json.to_string ~indent:false e))
                [ "name"; "ph"; "pid"; "tid" ])
            evs)

let test_trace_write_file () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wap-trace-test-%d.json" (Unix.getpid ()))
  in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      with_tracer (fun t ->
          Trace.with_span ~cat:"test" "s" (fun () -> ());
          Trace.write t ~file:path);
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "written file parses" true
        (match Json.of_string s with Ok _ -> true | Error _ -> false))

let test_trace_multi_domain () =
  let evs =
    with_tracer (fun t ->
        let ds =
          List.init 4 (fun i ->
              Domain.spawn (fun () ->
                  Trace.with_span ~cat:"test"
                    (Printf.sprintf "worker-%d" i)
                    (fun () -> ())))
        in
        List.iter Domain.join ds;
        Trace.events t)
  in
  Alcotest.(check int) "one span per domain" 4 (List.length evs);
  let tids =
    List.sort_uniq compare (List.map (fun e -> e.Trace.ev_tid) evs)
  in
  Alcotest.(check int) "four distinct tids" 4 (List.length tids)

let test_ring_overflow_eviction () =
  let t = Trace.create ~ring_capacity:4 () in
  Trace.set_global (Some t);
  Fun.protect ~finally:(fun () -> Trace.set_global None) @@ fun () ->
  for i = 1 to 10 do
    Trace.instant ~cat:"test" (Printf.sprintf "e%d" i)
  done;
  Alcotest.(check (option int)) "capacity reported" (Some 4)
    (Trace.ring_capacity t);
  Alcotest.(check int) "every record counted, dropped included" 10
    (Trace.event_count t);
  Alcotest.(check int) "overflow counted as drops" 6 (Trace.dropped t);
  let names = List.map (fun e -> e.Trace.ev_name) (Trace.events t) in
  Alcotest.(check (list string)) "oldest evicted first, order kept"
    [ "e7"; "e8"; "e9"; "e10" ] names;
  (* draining resets the window but keeps the drop counter *)
  ignore (Trace.drain t);
  Alcotest.(check int) "drained ring is empty" 0
    (List.length (Trace.events t));
  Trace.instant ~cat:"test" "after";
  Alcotest.(check (list string)) "ring records again after a drain"
    [ "after" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events t))

(* ------------------------------------------------------------------ *)
(* Metrics.                                                            *)

let test_counter_basic () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter ~registry:r "test.count" in
  Metrics.incr c;
  Metrics.incr ~by:41 c;
  Alcotest.(check int) "42 after 1+41" 42 (Metrics.value c);
  let c' = Metrics.counter ~registry:r "test.count" in
  Metrics.incr c';
  Alcotest.(check int) "find-or-create shares state" 43 (Metrics.value c)

let test_counter_merge_4_domains () =
  let r = Metrics.create_registry () in
  let c = Metrics.counter ~registry:r "test.parallel" in
  let per_domain = 25_000 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no increment lost at jobs=4" (4 * per_domain)
    (Metrics.value c)

let test_histogram_buckets () =
  let r = Metrics.create_registry () in
  let h = Metrics.histogram ~registry:r ~buckets:[| 0.01; 0.1; 1.0 |] "test.h" in
  List.iter (Metrics.observe h) [ 0.005; 0.05; 0.5; 5.0 ];
  let s = Metrics.hist_snapshot h in
  Alcotest.(check (array (float 1e-9))) "bounds kept" [| 0.01; 0.1; 1.0 |]
    s.Metrics.h_buckets;
  Alcotest.(check (array int)) "one observation per bucket + overflow"
    [| 1; 1; 1; 1 |] s.Metrics.h_counts;
  Alcotest.(check int) "total count" 4 s.Metrics.h_count;
  Alcotest.(check (float 1e-6)) "sum" 5.555 s.Metrics.h_sum

let test_histogram_merge_4_domains () =
  let r = Metrics.create_registry () in
  let h = Metrics.histogram ~registry:r ~buckets:[| 1.0 |] "test.hp" in
  let per_domain = 10_000 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.observe h 0.5
            done))
  in
  List.iter Domain.join ds;
  let s = Metrics.hist_snapshot h in
  Alcotest.(check int) "no observation lost at jobs=4" (4 * per_domain)
    s.Metrics.h_count;
  Alcotest.(check (float 1.0)) "sum merged" (0.5 *. float_of_int (4 * per_domain))
    s.Metrics.h_sum

let test_registry_snapshot_and_reset () =
  let r = Metrics.create_registry () in
  Metrics.incr (Metrics.counter ~registry:r "b.second");
  Metrics.incr (Metrics.counter ~registry:r "a.first");
  Metrics.observe (Metrics.histogram ~registry:r "z.h") 0.25;
  let s = Metrics.snapshot r in
  Alcotest.(check (list (pair string int))) "counters sorted by name"
    [ ("a.first", 1); ("b.second", 1) ]
    s.Metrics.counters;
  Alcotest.(check (list string)) "histograms listed" [ "z.h" ]
    (List.map fst s.Metrics.histograms);
  Metrics.reset r;
  let s = Metrics.snapshot r in
  Alcotest.(check (list (pair string int))) "reset zeroes, keeps registration"
    [ ("a.first", 0); ("b.second", 0) ]
    s.Metrics.counters

let test_gauge_basic () =
  let r = Metrics.create_registry () in
  let g = Metrics.gauge ~registry:r "test.g" in
  Alcotest.(check (float 0.)) "starts at zero" 0.0 (Metrics.gauge_value g);
  Metrics.set g 3.5;
  Metrics.set g 2.0;
  Alcotest.(check (float 0.)) "last write wins" 2.0 (Metrics.gauge_value g);
  let g' = Metrics.gauge ~registry:r "test.g" in
  Metrics.set g' 7.0;
  Alcotest.(check (float 0.)) "find-or-create shares state" 7.0
    (Metrics.gauge_value g)

let test_quantile () =
  let r = Metrics.create_registry () in
  let h = Metrics.histogram ~registry:r ~buckets:[| 0.01; 0.1; 1.0 |] "test.q" in
  Alcotest.(check bool) "empty histogram has no quantile" true
    (Float.is_nan (Metrics.quantile h 0.5));
  for _ = 1 to 100 do
    Metrics.observe h 0.05
  done;
  (* all mass in (0.01, 0.1]: the quantile interpolates inside that bucket *)
  Alcotest.(check (float 1e-9)) "p50 interpolates inside the bucket" 0.055
    (Metrics.quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p95 interpolates inside the bucket" 0.0955
    (Metrics.quantile h 0.95);
  Metrics.observe h 5.0;
  Alcotest.(check (float 1e-9)) "overflow mass clamps to the top bound" 1.0
    (Metrics.quantile h 1.0)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition.                                              *)

module Expo = Wap_obs.Expo

let test_prometheus_golden () =
  let r = Metrics.create_registry () in
  Metrics.incr ~by:3 (Metrics.counter ~registry:r "scan.files");
  Metrics.set (Metrics.gauge ~registry:r "serve.open_documents") 2.;
  Metrics.incr ~by:5
    (Metrics.counter ~registry:r "scan.candidates.sqli first-order");
  let h =
    Metrics.histogram ~registry:r ~buckets:[| 0.1; 1.0 |]
      "serve.request_seconds.textDocument/didOpen"
  in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 2.0 ];
  let expected =
    "# HELP wap_scan_candidates_sqli_first_order_total wap metric \
     wap_scan_candidates_sqli_first_order_total\n\
     # TYPE wap_scan_candidates_sqli_first_order_total counter\n\
     wap_scan_candidates_sqli_first_order_total 5\n\
     # HELP wap_scan_files_total wap metric wap_scan_files_total\n\
     # TYPE wap_scan_files_total counter\n\
     wap_scan_files_total 3\n\
     # HELP wap_serve_open_documents wap metric wap_serve_open_documents\n\
     # TYPE wap_serve_open_documents gauge\n\
     wap_serve_open_documents 2\n\
     # HELP wap_serve_request_seconds wap metric wap_serve_request_seconds\n\
     # TYPE wap_serve_request_seconds histogram\n\
     wap_serve_request_seconds_bucket{method=\"textDocument/didOpen\",le=\"0.1\"} 1\n\
     wap_serve_request_seconds_bucket{method=\"textDocument/didOpen\",le=\"1\"} 2\n\
     wap_serve_request_seconds_bucket{method=\"textDocument/didOpen\",le=\"+Inf\"} 3\n\
     wap_serve_request_seconds_sum{method=\"textDocument/didOpen\"} 2.55\n\
     wap_serve_request_seconds_count{method=\"textDocument/didOpen\"} 3\n"
  in
  Alcotest.(check string) "golden document" expected (Expo.prometheus r)

let test_prometheus_roundtrip () =
  let r = Metrics.create_registry () in
  (* a method name exercising all three label escapes: quote, backslash,
     newline *)
  let weird = "he said \"hi\\there\"\nand left" in
  let h =
    Metrics.histogram ~registry:r ~buckets:[| 0.1; 1.0 |]
      ("serve.request_seconds." ^ weird)
  in
  List.iter (Metrics.observe h) [ 0.05; 0.5; 0.7; 2.0 ];
  Metrics.incr ~by:7 (Metrics.counter ~registry:r ("serve.requests." ^ weird));
  let doc = Expo.prometheus r in
  match Expo.parse_text doc with
  | Error e -> Alcotest.failf "strict parse rejected our own exposition: %s" e
  | Ok p ->
      let samples name =
        List.filter (fun s -> s.Expo.s_name = name) p.Expo.p_samples
      in
      (* label escaping round-trips to the original value *)
      let methods =
        List.filter_map
          (fun s -> List.assoc_opt "method" s.Expo.s_labels)
          p.Expo.p_samples
      in
      Alcotest.(check bool) "escaped label value round-trips" true
        (List.mem weird methods);
      (* buckets are cumulative and closed by +Inf = _count *)
      let buckets = samples "wap_serve_request_seconds_bucket" in
      let vals = List.map (fun s -> s.Expo.s_value) buckets in
      Alcotest.(check (list (float 0.))) "buckets are cumulative"
        (List.sort compare vals) vals;
      let inf =
        List.find_opt
          (fun s -> List.assoc_opt "le" s.Expo.s_labels = Some "+Inf")
          buckets
      in
      let count = samples "wap_serve_request_seconds_count" in
      (match (inf, count) with
      | Some i, [ c ] ->
          Alcotest.(check (float 0.)) "+Inf bucket equals _count" c.Expo.s_value
            i.Expo.s_value
      | _ -> Alcotest.fail "missing +Inf bucket or _count sample");
      (match samples "wap_serve_request_seconds_sum" with
      | [ s ] ->
          Alcotest.(check (float 1e-9)) "_sum is the sum of observations" 3.25
            s.Expo.s_value
      | l -> Alcotest.failf "expected one _sum sample, got %d" (List.length l));
      (match samples "wap_serve_requests_total" with
      | [ s ] ->
          Alcotest.(check (float 0.)) "counter value survives" 7.0
            s.Expo.s_value
      | l ->
          Alcotest.failf "expected one requests_total sample, got %d"
            (List.length l));
      (* TYPE lines cover every family *)
      Alcotest.(check (option string)) "histogram TYPE line" (Some "histogram")
        (List.assoc_opt "wap_serve_request_seconds" p.Expo.p_types);
      Alcotest.(check (option string)) "counter TYPE line" (Some "counter")
        (List.assoc_opt "wap_serve_requests_total" p.Expo.p_types)

(* ------------------------------------------------------------------ *)
(* Cache eviction (the [max_entries] cap added with the atomic
   counters).                                                          *)

let test_cache_eviction () =
  let module Cache = Wap_engine.Cache in
  let c = Cache.create ~max_entries:2 () in
  let compute v () = v in
  let k i = Cache.key [ string_of_int i ] in
  ignore (Cache.memoize c ~key:(k 1) (compute 1));
  ignore (Cache.memoize c ~key:(k 2) (compute 2));
  Alcotest.(check int) "under the cap: nothing evicted" 0 (Cache.evictions c);
  ignore (Cache.memoize c ~key:(k 3) (compute 3));
  Alcotest.(check int) "over the cap: oldest evicted" 1 (Cache.evictions c);
  let _, hit3 = Cache.memoize c ~key:(k 3) (compute 3) in
  Alcotest.(check bool) "newest entry still cached" true hit3;
  let _, hit1 = Cache.memoize c ~key:(k 1) (compute 1) in
  Alcotest.(check bool) "evicted entry recomputes" false hit1

(* ------------------------------------------------------------------ *)
(* Tracing must not change scan results.                               *)

let test_tracing_does_not_change_results () =
  let seed = 2016 in
  let tool = Wap_core.Tool.create ~seed Wap_core.Version.Wape in
  let pkg =
    Wap_corpus.Appgen.of_webapp_profile ~seed
      (List.nth Wap_corpus.Profiles.vulnerable_webapps 0)
  in
  let files =
    List.map
      (fun (f : Wap_corpus.Appgen.file) ->
        (f.Wap_corpus.Appgen.f_name, f.Wap_corpus.Appgen.f_source))
      pkg.Wap_corpus.Appgen.pkg_files
  in
  let export () =
    let o =
      Wap_core.Scan.run tool (Wap_core.Scan.request ~jobs:4 files)
    in
    let r = o.Wap_core.Scan.result in
    Wap_core.Export.result_to_string
      {
        r with
        Wap_core.Tool.analysis_seconds = 0.0;
        analysis_cpu_seconds = 0.0;
        phase_seconds =
          List.map (fun (k, _) -> (k, 0.0)) r.Wap_core.Tool.phase_seconds;
      }
  in
  let plain = export () in
  let traced, n_events =
    with_tracer (fun t ->
        let e = export () in
        (e, Trace.event_count t))
  in
  Alcotest.(check bool) "the traced run actually recorded spans" true
    (n_events > 0);
  Alcotest.(check string) "export byte-identical with tracing on" plain traced

let () =
  Alcotest.run "wap_obs"
    [
      ( "clock",
        [
          Alcotest.test_case "monotonic" `Quick test_clock_monotonic;
          Alcotest.test_case "unit conversions" `Quick test_clock_units;
        ] );
      ( "log",
        [
          Alcotest.test_case "levels gate emission" `Quick test_log_levels;
          Alcotest.test_case "text format" `Quick test_log_text_fields;
          Alcotest.test_case "jsonl format" `Quick test_log_jsonl;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting" `Quick test_span_nesting;
          Alcotest.test_case "span survives raise" `Quick
            test_span_records_on_raise;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_tracing_disabled_is_noop;
          Alcotest.test_case "chrome JSON well-formed" `Quick
            test_chrome_json_well_formed;
          Alcotest.test_case "write to file" `Quick test_trace_write_file;
          Alcotest.test_case "per-domain buffers" `Quick test_trace_multi_domain;
          Alcotest.test_case "ring overflow evicts oldest" `Quick
            test_ring_overflow_eviction;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basic;
          Alcotest.test_case "counter merge at jobs=4" `Quick
            test_counter_merge_4_domains;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram merge at jobs=4" `Quick
            test_histogram_merge_4_domains;
          Alcotest.test_case "snapshot + reset" `Quick
            test_registry_snapshot_and_reset;
          Alcotest.test_case "gauge basics" `Quick test_gauge_basic;
          Alcotest.test_case "histogram quantiles" `Quick test_quantile;
        ] );
      ( "expo",
        [
          Alcotest.test_case "prometheus golden document" `Quick
            test_prometheus_golden;
          Alcotest.test_case "strict parser round-trip" `Quick
            test_prometheus_roundtrip;
        ] );
      ( "cache",
        [ Alcotest.test_case "max_entries eviction" `Quick test_cache_eviction ] );
      ( "regression",
        [
          Alcotest.test_case "tracing changes no scan bytes" `Slow
            test_tracing_does_not_change_results;
        ] );
    ]
