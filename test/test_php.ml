(** Tests for the PHP front-end: lexer, parser, printer, visitor. *)

open Wap_php

let parse src = Parser.parse_string ~file:"test.php" ("<?php\n" ^ src)
let parse_raw src = Parser.parse_string ~file:"test.php" src

let tokens src =
  Lexer.tokenize ~file:"test.php" ("<?php " ^ src)
  |> List.map fst
  |> List.filter (fun t -> not (Token.equal t Token.EOF))

(* ------------------------------------------------------------------ *)
(* Lexer.                                                              *)

let test_lex_integers () =
  (match tokens "42 0x1F 007" with
  | [ Token.INT 42; Token.INT 31; Token.INT 7 ] -> ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat "," (List.map Token.show ts)))

let test_lex_floats () =
  match tokens "3.14 1e3 2.5e-2" with
  | [ Token.FLOAT a; Token.FLOAT b; Token.FLOAT c ] ->
      Alcotest.(check (float 1e-9)) "pi" 3.14 a;
      Alcotest.(check (float 1e-9)) "1e3" 1000.0 b;
      Alcotest.(check (float 1e-9)) "2.5e-2" 0.025 c
  | ts -> Alcotest.failf "unexpected: %s" (String.concat "," (List.map Token.show ts))

let test_lex_single_quoted () =
  match tokens {|'a\'b' 'c\\d' 'e\nf'|} with
  | [ Token.CONST_STRING a; Token.CONST_STRING b; Token.CONST_STRING c ] ->
      Alcotest.(check string) "escaped quote" "a'b" a;
      Alcotest.(check string) "escaped backslash" {|c\d|} b;
      (* \n is literal in single quotes *)
      Alcotest.(check string) "no newline escape" {|e\nf|} c
  | _ -> Alcotest.fail "expected three strings"

let test_lex_double_quoted_escapes () =
  match tokens {|"a\nb\tc\x41\\"|} with
  | [ Token.CONST_STRING s ] -> Alcotest.(check string) "escapes" "a\nb\tcA\\" s
  | ts -> Alcotest.failf "unexpected: %s" (String.concat "," (List.map Token.show ts))

let test_lex_interpolation_simple () =
  match tokens {|"hello $name!"|} with
  | [ Token.INTERP_STRING [ Token.Part_str "hello "; Token.Part_var "name"; Token.Part_str "!" ] ] ->
      ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat "," (List.map Token.show ts))

let test_lex_interpolation_index () =
  match tokens {|"v=$_GET[id]" "w=$a[0]" "x=$a[$k]"|} with
  | [ Token.INTERP_STRING [ _; Token.Part_index ("_GET", Token.Sub_name "id") ];
      Token.INTERP_STRING [ _; Token.Part_index ("a", Token.Sub_int 0) ];
      Token.INTERP_STRING [ _; Token.Part_index ("a", Token.Sub_var "k") ] ] ->
      ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat "," (List.map Token.show ts))

let test_lex_interpolation_prop_and_complex () =
  match tokens {|"p=$obj->name q={$a['x']}"|} with
  | [ Token.INTERP_STRING
        [ _; Token.Part_prop ("obj", "name"); _; Token.Part_complex "$a['x']" ] ] ->
      ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat "," (List.map Token.show ts))

let test_lex_heredoc () =
  let src = "<?php $x = <<<EOT\nhello $name\nEOT;\n" in
  let ts = Lexer.tokenize ~file:"t" src |> List.map fst in
  let has_interp =
    List.exists (function Token.INTERP_STRING _ -> true | _ -> false) ts
  in
  Alcotest.(check bool) "heredoc interpolates" true has_interp

let test_lex_nowdoc () =
  let src = "<?php $x = <<<'EOT'\nhello $name\nEOT;\n" in
  let ts = Lexer.tokenize ~file:"t" src |> List.map fst in
  let has_const =
    List.exists
      (function Token.CONST_STRING s -> s = "hello $name" | _ -> false)
      ts
  in
  Alcotest.(check bool) "nowdoc literal" true has_const

let test_lex_comments () =
  match tokens "1 // c\n + /* block\nmore */ 2 # hash\n" with
  | [ Token.INT 1; Token.PLUS; Token.INT 2 ] -> ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat "," (List.map Token.show ts))

let test_lex_keywords_case_insensitive () =
  match tokens "IF Else WHILE foreach" with
  | [ Token.K_IF; Token.K_ELSE; Token.K_WHILE; Token.K_FOREACH ] -> ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat "," (List.map Token.show ts))

let test_lex_operators_longest_match () =
  match tokens "<=> === !== **= <<= >>= ??= ... == <= && ?? ++ ->" with
  | [ Token.SPACESHIP; Token.IDENTICAL; Token.NOT_IDENTICAL; Token.POW_EQ;
      Token.SHL_EQ; Token.SHR_EQ; Token.QQ_EQ; Token.ELLIPSIS; Token.EQ_EQ;
      Token.LE; Token.AMP_AMP; Token.QQ; Token.INC; Token.ARROW ] ->
      ()
  | ts -> Alcotest.failf "unexpected: %s" (String.concat "," (List.map Token.show ts))

let test_lex_inline_html () =
  let ts = Lexer.tokenize ~file:"t" "<h1>Hi</h1><?php $x = 1; ?><p>bye</p>" in
  match List.map fst ts with
  | [ Token.INLINE_HTML "<h1>Hi</h1>"; Token.VARIABLE "x"; Token.EQ; Token.INT 1;
      Token.SEMI; Token.INLINE_HTML "<p>bye</p>"; Token.EOF ] ->
      ()
  | l -> Alcotest.failf "unexpected: %s" (String.concat "," (List.map Token.show l))

let test_lex_close_tag_no_double_semi () =
  (* `$x = 1; ?>` must not produce two semicolons *)
  let ts = Lexer.tokenize ~file:"t" "<?php $x = 1; ?>html" |> List.map fst in
  let semis = List.length (List.filter (Token.equal Token.SEMI) ts) in
  Alcotest.(check int) "one semi" 1 semis

let test_lex_error_unterminated_string () =
  try
    ignore (Lexer.tokenize ~file:"t" "<?php $x = 'oops");
    Alcotest.fail "expected lex error"
  with Lexer.Error (msg, _) ->
    Alcotest.(check string) "message" "unterminated single-quoted string" msg

let test_lex_error_bad_char () =
  (try
     ignore (Lexer.tokenize ~file:"t" "<?php $x = \x01;");
     Alcotest.fail "expected lex error"
   with Lexer.Error _ -> ())

let test_loc_tracking () =
  let ts = Lexer.tokenize ~file:"t" "<?php\n$x = 1;\n$y = 2;\n" in
  let var_locs =
    List.filter_map
      (fun (t, l) -> match t with Token.VARIABLE v -> Some (v, l.Loc.line) | _ -> None)
      ts
  in
  Alcotest.(check (list (pair string int))) "lines" [ ("x", 2); ("y", 3) ] var_locs

(* ------------------------------------------------------------------ *)
(* Parser.                                                             *)

let first_expr prog =
  match prog with
  | { Ast.s = Ast.Expr_stmt e; _ } :: _ -> e
  | _ -> Alcotest.fail "expected an expression statement"

let expr_of src = first_expr (parse src)

let test_parse_precedence_arith () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  match (expr_of "1 + 2 * 3;").Ast.e with
  | Ast.Binop (Ast.Plus, { e = Ast.Int 1; _ }, { e = Ast.Binop (Ast.Mul, _, _); _ }) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_concat_assoc () =
  (* 'a' . 'b' . 'c' is left-associative *)
  match (expr_of "'a' . 'b' . 'c';").Ast.e with
  | Ast.Binop (Ast.Concat, { e = Ast.Binop (Ast.Concat, _, _); _ }, { e = Ast.String "c"; _ }) ->
      ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_pow_right_assoc () =
  match (expr_of "2 ** 3 ** 2;").Ast.e with
  | Ast.Binop (Ast.Pow, { e = Ast.Int 2; _ }, { e = Ast.Binop (Ast.Pow, _, _); _ }) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_assignment_chain () =
  match (expr_of "$a = $b = 1;").Ast.e with
  | Ast.Assign (Ast.A_eq, { e = Ast.Var "a"; _ }, { e = Ast.Assign (Ast.A_eq, _, _); _ }) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_assign_ref () =
  match (expr_of "$a = &$b;").Ast.e with
  | Ast.Assign_ref ({ e = Ast.Var "a"; _ }, { e = Ast.Var "b"; _ }) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_compound_assign () =
  match (expr_of "$s .= 'x';").Ast.e with
  | Ast.Assign (Ast.A_concat, _, _) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_ternary_and_elvis () =
  (match (expr_of "$a ? 1 : 2;").Ast.e with
  | Ast.Ternary (_, Some _, _) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e));
  match (expr_of "$a ?: 2;").Ast.e with
  | Ast.Ternary (_, None, _) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_coalesce () =
  match (expr_of "$a ?? $b ?? 0;").Ast.e with
  | Ast.Binop (Ast.Coalesce, _, { e = Ast.Binop (Ast.Coalesce, _, _); _ }) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_cast_vs_paren () =
  (match (expr_of "(int) $x;").Ast.e with
  | Ast.Cast (Ast.C_int, _) -> ()
  | e -> Alcotest.failf "cast expected: %s" (Ast.show_expr_kind e));
  (* ($x) is just a parenthesized variable *)
  match (expr_of "($x);").Ast.e with
  | Ast.Var "x" -> ()
  | e -> Alcotest.failf "paren expected: %s" (Ast.show_expr_kind e)

let test_parse_call_chains () =
  match (expr_of "$db->table('users')->where('id', 1)->first();").Ast.e with
  | Ast.Call (Ast.F_method ({ e = Ast.Call (Ast.F_method _, _); _ }, Ast.Mem_ident "first"), [])
    -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_static_access () =
  (match (expr_of "Config::get('k');").Ast.e with
  | Ast.Call (Ast.F_static ("Config", "get"), _) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e));
  (match (expr_of "C::$prop;").Ast.e with
  | Ast.Static_prop ("C", "prop") -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e));
  match (expr_of "C::K;").Ast.e with
  | Ast.Class_const ("C", "K") -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_arrays () =
  (match (expr_of "array(1, 'k' => 2);").Ast.e with
  | Ast.Array_lit [ { ai_key = None; _ }; { ai_key = Some { e = Ast.String "k"; _ }; _ } ] -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e));
  match (expr_of "[1, 2][0];").Ast.e with
  | Ast.Index ({ e = Ast.Array_lit _; _ }, Some _) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_variable_variable () =
  match (expr_of "$$name;").Ast.e with
  | Ast.Var_var { e = Ast.Var "name"; _ } -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_closure () =
  match (expr_of "function ($x) use (&$acc, $cfg) { return $x; };").Ast.e with
  | Ast.Closure { cl_params = [ { p_name = "x"; _ } ];
                  cl_uses = [ (true, "acc"); (false, "cfg") ]; _ } ->
      ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_if_chain () =
  match (parse "if ($a) { } elseif ($b) { } else if ($c) { } else { }" : Ast.program) with
  | [ { Ast.s = Ast.If (branches, Some _); _ } ] ->
      Alcotest.(check int) "branches" 3 (List.length branches)
  | _ -> Alcotest.fail "expected if"

let test_parse_alt_syntax () =
  let prog =
    parse_raw
      "<?php if ($a): ?>html<?php elseif ($b): ?>other<?php else: ?>none<?php endif; ?>"
  in
  match prog with
  | [ { Ast.s = Ast.If (branches, Some _); _ } ] ->
      Alcotest.(check int) "branches" 2 (List.length branches)
  | _ -> Alcotest.fail "expected alternative-syntax if"

let test_parse_loops () =
  let prog =
    parse
      "while ($a) { $a--; } do { $b++; } while ($b < 3); for ($i = 0; $i < 9; $i++) { } foreach ($xs as $k => &$v) { }"
  in
  match List.map (fun s -> s.Ast.s) prog with
  | [ Ast.While _; Ast.Do_while _; Ast.For _;
      Ast.Foreach (_, { fe_key = Some _; fe_by_ref = true; _ }, _) ] ->
      ()
  | _ -> Alcotest.fail "expected 4 loop statements"

let test_parse_switch () =
  let prog = parse "switch ($x) { case 1: $a = 1; break; case 2: default: $a = 3; }" in
  match prog with
  | [ { Ast.s = Ast.Switch (_, [ Ast.Case _; Ast.Case (_, []); Ast.Default _ ]); _ } ] -> ()
  | _ -> Alcotest.fail "expected switch with fallthrough case"

let test_parse_try_catch () =
  let prog =
    parse "try { risky(); } catch (A | B $e) { } catch (C) { } finally { done(); }"
  in
  match prog with
  | [ { Ast.s = Ast.Try (_, [ c1; c2 ], Some _); _ } ] ->
      Alcotest.(check (list string)) "types" [ "A"; "B" ] c1.Ast.c_types;
      Alcotest.(check (option string)) "var" (Some "e") c1.Ast.c_var;
      Alcotest.(check (option string)) "no var" None c2.Ast.c_var
  | _ -> Alcotest.fail "expected try/catch/finally"

let test_parse_function_def () =
  let prog = parse "function f(int $a, &$b, $c = 1, ...$rest): ?string { return 'x'; }" in
  match prog with
  | [ { Ast.s = Ast.Func_def f; _ } ] ->
      Alcotest.(check string) "name" "f" f.Ast.f_name;
      Alcotest.(check int) "params" 4 (List.length f.Ast.f_params);
      let b = List.nth f.Ast.f_params 1 in
      Alcotest.(check bool) "by ref" true b.Ast.p_by_ref;
      let rest = List.nth f.Ast.f_params 3 in
      Alcotest.(check bool) "variadic" true rest.Ast.p_variadic
  | _ -> Alcotest.fail "expected function"

let test_parse_class () =
  let prog =
    parse
      "abstract class Shop extends Base implements A, B {\n\
       const LIMIT = 10;\n\
       public static $count = 0;\n\
       private $items;\n\
       public function add($i) { $this->items[] = $i; }\n\
       abstract protected function render();\n\
       }"
  in
  match prog with
  | [ { Ast.s = Ast.Class_def k; _ } ] ->
      Alcotest.(check bool) "abstract" true k.Ast.k_abstract;
      Alcotest.(check (option string)) "parent" (Some "Base") k.Ast.k_parent;
      Alcotest.(check (list string)) "ifaces" [ "A"; "B" ] k.Ast.k_implements;
      Alcotest.(check int) "consts" 1 (List.length k.Ast.k_consts);
      Alcotest.(check int) "props" 2 (List.length k.Ast.k_props);
      Alcotest.(check int) "methods" 2 (List.length k.Ast.k_methods)
  | _ -> Alcotest.fail "expected class"

let test_parse_echo_multi () =
  match parse "echo 'a', $b, 1;" with
  | [ { Ast.s = Ast.Echo [ _; _; _ ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected echo with three operands"

let test_parse_interp_becomes_ast () =
  match (expr_of "\"x {$a['k']} $b->c\";").Ast.e with
  | Ast.Interp parts ->
      let exprs =
        List.filter_map (function Ast.Ip_expr e -> Some e.Ast.e | _ -> None) parts
      in
      (match exprs with
      | [ Ast.Index _; Ast.Prop _ ] -> ()
      | _ -> Alcotest.fail "expected index + prop interpolations")
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_word_ops_precedence () =
  (* $a = 1 and f() : `and` binds looser than `=` *)
  match (expr_of "$a = 1 and f();").Ast.e with
  | Ast.Binop (Ast.Bool_and, { e = Ast.Assign _; _ }, { e = Ast.Call _; _ }) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_heredoc_complex () =
  (* heredoc body with complex interpolation becomes an Interp expr *)
  let prog = parse_raw "<?php $msg = <<<EOT\nDear {$u['name']}, balance {$a->total}\nEOT;\n" in
  match prog with
  | [ { Ast.s = Ast.Expr_stmt { e = Ast.Assign (_, _, { e = Ast.Interp parts; _ }); _ }; _ } ] ->
      let dyn =
        List.length (List.filter (function Ast.Ip_expr _ -> true | _ -> false) parts)
      in
      Alcotest.(check int) "two interpolations" 2 dyn
  | _ -> Alcotest.fail "expected assignment of interpolated heredoc"

let test_parse_nested_closures () =
  match (expr_of "function ($x) { return function ($y) use ($x) { return $x + $y; }; };").Ast.e with
  | Ast.Closure { cl_body = [ { s = Ast.Return (Some { e = Ast.Closure inner; _ }); _ } ]; _ }
    ->
      Alcotest.(check int) "inner use" 1 (List.length inner.Ast.cl_uses)
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_static_closure () =
  match (expr_of "static function () { return 1; };").Ast.e with
  | Ast.Closure { cl_static = true; _ } -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_list_in_foreach () =
  let prog = parse "foreach ($pairs as list($k, $v)) { echo $k; }" in
  match prog with
  | [ { Ast.s = Ast.Foreach (_, { fe_value = { e = Ast.List [ Some _; Some _ ]; _ }; _ }, _); _ } ]
    -> ()
  | _ -> Alcotest.fail "expected list() destructuring in foreach"

let test_parse_backtick () =
  match (expr_of "`ls -l $dir`;").Ast.e with
  | Ast.Backtick parts ->
      Alcotest.(check bool) "interpolates" true
        (List.exists (function Ast.Ip_expr _ -> true | _ -> false) parts)
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_short_echo () =
  let prog = parse_raw "before <?= $x ?> after" in
  match List.map (fun s -> s.Ast.s) prog with
  | [ Ast.Inline_html _; Ast.Echo [ { e = Ast.Var "x"; _ } ]; Ast.Inline_html _ ] -> ()
  | _ -> Alcotest.fail "expected inline-html / echo / inline-html"

let test_parse_new_with_dynamic_class () =
  match (expr_of "new $cls(1);").Ast.e with
  | Ast.New ("$cls", [ _ ]) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ast.show_expr_kind e)

let test_parse_error_reports_location () =
  try
    ignore (parse "if ($a { }");
    Alcotest.fail "expected parse error"
  with Parser.Error (_, loc) -> Alcotest.(check string) "file" "test.php" loc.Loc.file

let test_parse_include_exit () =
  let prog = parse "include 'a.php'; require_once($p); exit(1); die();" in
  match List.map (fun s -> s.Ast.s) prog with
  | [ Ast.Expr_stmt { e = Ast.Include (Ast.Inc, _); _ };
      Ast.Expr_stmt { e = Ast.Include (Ast.Req_once, _); _ };
      Ast.Expr_stmt { e = Ast.Exit (Some _); _ };
      Ast.Expr_stmt { e = Ast.Exit None; _ } ] ->
      ()
  | _ -> Alcotest.fail "expected include/require/exit statements"

let test_tolerant_parsing () =
  let prog, errs =
    Parser.parse_string_tolerant ~file:"t.php"
      "<?php\n$ok1 = 1;\nif ($broken { }\n$ok2 = 2;\nfunction f() { return 3; }\n"
  in
  Alcotest.(check bool) "errors recovered" true (List.length errs >= 1);
  let assigns =
    List.filter
      (fun (s : Ast.stmt) ->
        match s.Ast.s with Ast.Expr_stmt { e = Ast.Assign _; _ } -> true | _ -> false)
      prog
  in
  Alcotest.(check int) "statements around the error survive" 2 (List.length assigns);
  Alcotest.(check bool) "function survives" true
    (List.exists
       (fun (s : Ast.stmt) -> match s.Ast.s with Ast.Func_def _ -> true | _ -> false)
       prog)

let test_tolerant_parsing_clean_input () =
  let prog, errs = Parser.parse_string_tolerant ~file:"t.php" "<?php\n$a = 1;\necho $a;\n" in
  Alcotest.(check int) "no errors" 0 (List.length errs);
  Alcotest.(check int) "all statements" 2 (List.length prog)

let test_tolerant_parsing_lex_error () =
  let _, errs = Parser.parse_string_tolerant ~file:"t.php" "<?php $x = 'unterminated" in
  Alcotest.(check bool) "lex error recovered" true (List.length errs >= 1)

(* ------------------------------------------------------------------ *)
(* Printer.                                                            *)

let normalize src = Printer.program_to_string (parse_raw src)

let test_print_parse_stable src () =
  let once = normalize src in
  let twice = Printer.program_to_string (parse_raw once) in
  Alcotest.(check string) "printer stable" once twice

let sample_sources =
  [
    "<?php $q = \"SELECT * FROM t WHERE a = '$x' AND b = {$y['k']}\"; mysql_query($q);";
    "<?php function f($a = array(1, 2), &$b = null) { return $a ?: $b; }";
    "<?php class C extends D { public function m() { return parent::m() + 1; } }";
    "<?php foreach ($rows as $k => $v): ?>\n<li><?= $v ?></li>\n<?php endforeach; ?>";
    "<?php $f = function ($x) use (&$s) { $s .= $x; return strlen($s); };";
    "<?php switch ($c) { case 'a': f(); break; default: g(); } ?>tail";
    "<?php try { f(); } catch (E $e) { log_it($e); } finally { done(); }";
    "<?php $a[$i]{0} = $b ? -1 : +2; @unlink('/tmp/x'); print $a <=> $b;";
    "<?php echo <<<EOT\nDear $name,\nbye\nEOT; echo 'done';";
    "<?php list($a, , $b) = explode(',', $line); $x = isset($a) ? (int) $a : 0;";
  ]

let test_escape_round_trip () =
  (* strings with every nasty character survive print -> parse *)
  let nasty = "a'b\"c\\d\ne\tf$g{h}" in
  let e = Ast.str nasty in
  let printed = Printer.expr_to_string e in
  let back = Parser.parse_expression printed in
  match back.Ast.e with
  | Ast.String s -> Alcotest.(check string) "round trip" nasty s
  | _ -> Alcotest.fail "expected string literal"

let test_lex_int_overflow () =
  (* literals beyond 2^63-1 lex as floats, PHP-style, instead of
     raising Failure from int_of_string *)
  (match tokens "0xFFFFFFFFFFFFFFFF 9223372036854775808 0x10000000000000000" with
  | [ Token.FLOAT a; Token.FLOAT b; Token.FLOAT c ] ->
      Alcotest.(check (float 1e6)) "0xFFFF... ~ 2^64" 1.8446744073709552e19 a;
      Alcotest.(check (float 1e6)) "2^63" 9.223372036854776e18 b;
      Alcotest.(check (float 1e6)) "0x1_0000... ~ 2^64" 1.8446744073709552e19 c
  | ts ->
      Alcotest.failf "unexpected: %s"
        (String.concat "," (List.map Token.show ts)));
  (* a too-large subscript inside interpolation degrades to a bareword
     key rather than crashing the lexer *)
  match tokens {|"$a[99999999999999999999]"|} with
  | [ Token.INTERP_STRING
        [ Token.Part_index ("a", Token.Sub_name "99999999999999999999") ] ] ->
      ()
  | ts ->
      Alcotest.failf "unexpected: %s" (String.concat "," (List.map Token.show ts))

let test_print_right_assoc_parens () =
  (* ?? and ** parse right-associatively, so a left-nested tree must
     keep its parentheses when printed *)
  Alcotest.(check string) "left-nested coalesce"
    "<?php\n($_POST ?? 0) ?? 0;\n" (normalize "<?php ($_POST ?? 0) ?? 0;");
  Alcotest.(check string) "right-nested coalesce needs none"
    "<?php\n$_POST ?? 0 ?? 0;\n" (normalize "<?php $_POST ?? 0 ?? 0;");
  Alcotest.(check string) "left-nested pow"
    "<?php\n(2 ** 3) ** 2;\n" (normalize "<?php (2 ** 3) ** 2;")

let test_print_nested_unary () =
  (* -(-$x) must not print as --$x, which re-lexes as pre-decrement *)
  Alcotest.(check string) "double minus"
    "<?php\n-(-$x);\n" (normalize "<?php - -$x;");
  Alcotest.(check string) "double plus"
    "<?php\n+(+$x);\n" (normalize "<?php + +$x;")

let test_print_float_spelling () =
  (* overflowing literals become infinite floats; the printer must emit
     a PHP-lexable spelling, and finite floats must round-trip exactly *)
  Alcotest.(check string) "infinity prints as an overflowing literal"
    "<?php\n$f = 1.0e400;\n" (normalize "<?php $f = 1e309;");
  Alcotest.(check string) "17 significant digits survive"
    "<?php\n$g = 0.30000000000000004;\n"
    (normalize "<?php $g = 0.30000000000000004;");
  Alcotest.(check string) "negative infinity"
    "-1.0e400" (Printer.expr_to_string (Ast.mk_e (Ast.Float neg_infinity)));
  match (Parser.parse_expression (Printer.expr_to_string (Ast.mk_e (Ast.Float nan)))).Ast.e with
  | Ast.Binop (Ast.Div, _, _) -> ()
  | _ -> Alcotest.fail "NaN must print as a parseable expression"

let test_print_backtick_escape () =
  (* a literal backtick inside the backtick operator is re-escaped *)
  Alcotest.(check string) "escaped backtick survives"
    "<?php\n$out = `ls \\`pwd\\``;\n"
    (normalize "<?php $out = `ls \\`pwd\\``;");
  let once = normalize "<?php $out = `ls \\`pwd\\``;" in
  Alcotest.(check string) "and is a fixpoint" once (normalize once)

(* ------------------------------------------------------------------ *)
(* Visitor.                                                            *)

let test_visitor_named_calls () =
  let prog = parse "f(1); $o->g(2); H::i(3); $fn(4);" in
  let names = List.map (fun (n, _, _) -> n) (Visitor.named_calls prog) in
  Alcotest.(check (list string)) "calls" [ "f"; "g"; "h::i" ] names

let test_visitor_collect_functions () =
  let prog =
    parse
      "function top() { function nested() { } }\n\
       class K { public function m() { } }\n\
       if (true) { function conditional() { } }"
  in
  let names = List.map (fun f -> f.Ast.f_name) (Visitor.collect_functions prog) in
  Alcotest.(check (list string)) "functions"
    [ "top"; "nested"; "m"; "conditional" ] names

let test_visitor_map_expr_identity () =
  let prog = parse_raw (List.nth sample_sources 0) in
  let mapped = Visitor.map_stmts (fun e -> e) prog in
  Alcotest.(check bool) "identity map" true (Ast.equal_program prog mapped)

let test_visitor_map_expr_rewrites () =
  let prog = parse "echo $x;" in
  let mapped =
    Visitor.map_stmts
      (fun e ->
        match e.Ast.e with
        | Ast.Var "x" -> Ast.call "wrap" [ e ]
        | _ -> e)
      prog
  in
  match mapped with
  | [ { Ast.s = Ast.Echo [ { e = Ast.Call (Ast.F_ident "wrap", _); _ } ]; _ } ] -> ()
  | _ -> Alcotest.fail "expected wrapped echo argument"

let test_visitor_stmt_count () =
  let prog = parse "$a = 1; if ($a) { $b = 2; } while ($a) { $a--; }" in
  Alcotest.(check int) "stmt count" 5 (Visitor.stmt_count prog)

(* ------------------------------------------------------------------ *)
(* Property tests.                                                     *)

let qcheck_lexer_totality =
  QCheck.Test.make ~name:"lexer raises only Lexer.Error" ~count:300
    QCheck.(string_gen_of_size (Gen.int_range 0 80) Gen.printable)
    (fun s ->
      match Lexer.tokenize ~file:"q" ("<?php " ^ s) with
      | _ -> true
      | exception Lexer.Error _ -> true)

let qcheck_printer_idempotent =
  (* corpus snippets are arbitrary-ish PHP programs: printing is a
     fixpoint after one normalization *)
  QCheck.Test.make ~name:"printer idempotent on generated PHP" ~count:60
    QCheck.(int_bound 10_000)
    (fun seed ->
      let g = Wap_corpus.Snippet.make_gen ~seed in
      let classes = Wap_catalog.Vuln_class.wape in
      let vclass = List.nth classes (seed mod List.length classes) in
      let labels = Wap_corpus.Snippet.[ Real; Fp_easy; Fp_hard; Sanitized ] in
      let label = List.nth labels (seed mod 4) in
      let snip = Wap_corpus.Snippet.generate g vclass label in
      let src = "<?php\n" ^ snip.Wap_corpus.Snippet.code in
      let once = Printer.program_to_string (parse_raw src) in
      let twice = Printer.program_to_string (parse_raw once) in
      String.equal once twice)

let qcheck_int_literal_roundtrip =
  QCheck.Test.make ~name:"integer literal round trip" ~count:200 QCheck.int
    (fun n ->
      let printed = Printer.expr_to_string (Ast.int_ n) in
      match (Parser.parse_expression printed).Ast.e with
      | Ast.Int m -> m = n
      | Ast.Unop (Ast.Neg, { e = Ast.Int m; _ }) -> -m = n
      | _ -> false)

let qcheck_string_literal_roundtrip =
  QCheck.Test.make ~name:"string literal round trip" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 0 30) Gen.char)
    (fun s ->
      let printed = Printer.expr_to_string (Ast.str s) in
      match (Parser.parse_expression printed).Ast.e with
      | Ast.String s' -> String.equal s s'
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Token buffer and the zero-allocation scanner.                       *)

let test_token_buf_roundtrip () =
  let keywords = List.map snd Token.keyword_table in
  let punct =
    Token.
      [ LPAREN; RPAREN; LBRACE; RBRACE; LBRACKET; RBRACKET; SEMI; COMMA;
        COLON; DOUBLE_COLON; ARROW; DOUBLE_ARROW; QUESTION; QQ; QQ_EQ; AT;
        DOLLAR; ELLIPSIS; PLUS; MINUS; STAR; SLASH; PERCENT; POW; DOT; EQ;
        PLUS_EQ; MINUS_EQ; STAR_EQ; SLASH_EQ; PERCENT_EQ; DOT_EQ; POW_EQ;
        AMP_EQ; PIPE_EQ; CARET_EQ; SHL_EQ; SHR_EQ; EQ_EQ; NEQ; IDENTICAL;
        NOT_IDENTICAL; LT; GT; LE; GE; SPACESHIP; AMP_AMP; PIPE_PIPE; BANG;
        AMP; PIPE; CARET; TILDE; SHL; SHR; INC; DEC; EOF ]
  in
  let boxed =
    Token.
      [ INT 42; INT min_int; FLOAT 3.14; CONST_STRING "s'\n";
        INTERP_STRING [ Part_str "a"; Part_var "v"; Part_complex "$x+1" ];
        VARIABLE "x"; IDENT "strlen"; INLINE_HTML "<b>&amp;</b>";
        BACKTICK_STRING [ Part_str "ls "; Part_var "dir" ] ]
  in
  let toks = keywords @ punct @ boxed in
  let buf = Token_buf.create ~capacity:1 ~file:"t.php" () in
  List.iteri (fun i t -> Token_buf.push buf t ~line:(i + 1) ~col:(2 * i)) toks;
  Alcotest.(check int) "length" (List.length toks) (Token_buf.length buf);
  Alcotest.(check string) "file" "t.php" (Token_buf.file buf);
  List.iteri
    (fun i t ->
      if not (Token.equal (Token_buf.tok buf i) t) then
        Alcotest.failf "token %d: pushed %s, read back %s" i (Token.show t)
          (Token.show (Token_buf.tok buf i));
      Alcotest.(check int) "line" (i + 1) (Token_buf.line buf i);
      Alcotest.(check int) "col" (2 * i) (Token_buf.col buf i))
    toks;
  match Token_buf.last_tok buf with
  | Some t when Token.equal t (List.nth toks (List.length toks - 1)) -> ()
  | t ->
      Alcotest.failf "last_tok: %s"
        (match t with Some t -> Token.show t | None -> "None")

(* line/col pack into one immediate int; extreme values must survive. *)
let test_token_buf_loc_packing () =
  let buf = Token_buf.create ~file:"big.php" () in
  let cases =
    [ (1, 0); (1, 1); (123_456, 789); (1 lsl 30, (1 lsl 31) - 1) ]
  in
  List.iter (fun (line, col) -> Token_buf.push buf Token.SEMI ~line ~col) cases;
  List.iteri
    (fun i (line, col) ->
      Alcotest.(check int) "line" line (Token_buf.line buf i);
      Alcotest.(check int) "col" col (Token_buf.col buf i);
      let l = Token_buf.loc buf i in
      if not (Loc.equal l (Loc.make ~file:"big.php" ~line ~col)) then
        Alcotest.failf "loc %d: %s" i (Loc.to_string l))
    cases

(* Repeated identifiers, variables and plain strings come back as the
   same physical token: the scanner hashconses per tokenize call. *)
let test_lexer_interning_identity () =
  let toks =
    Lexer.tokenize ~file:"i.php"
      "<?php $foo = $foo + $foo; bar(); bar(); $s = 'dup'; $t = 'dup';"
    |> List.map fst
  in
  let physical_pair name pick =
    match List.filter pick toks with
    | a :: b :: _ ->
        if not (a == b) then Alcotest.failf "%s tokens not shared" name
    | _ -> Alcotest.failf "expected %s at least twice" name
  in
  physical_pair "VARIABLE foo"
    (function Token.VARIABLE "foo" -> true | _ -> false);
  physical_pair "IDENT bar" (function Token.IDENT "bar" -> true | _ -> false);
  physical_pair "CONST_STRING dup"
    (function Token.CONST_STRING "dup" -> true | _ -> false)

(* Differential check against the reference lexer: same tokens, same
   locations, same error, on one source. *)
let check_tokenize_equiv ?(file = "equiv.php") src =
  let run f = try Ok (f ~file src) with Lexer.Error (m, l) -> Error (m, l) in
  match (run Lexer.tokenize, run Lexer_ref.tokenize) with
  | Ok got, Ok want ->
      if List.length got <> List.length want then
        Alcotest.failf "%s: %d tokens vs %d reference" file (List.length got)
          (List.length want);
      List.iteri
        (fun i ((t, l), (t', l')) ->
          if not (Token.equal t t') then
            Alcotest.failf "%s: token %d is %s, reference %s" file i
              (Token.show t) (Token.show t');
          if not (Loc.equal l l') then
            Alcotest.failf "%s: token %d (%s) at %s, reference %s" file i
              (Token.show t) (Loc.to_string l) (Loc.to_string l'))
        (List.combine got want)
  | Error (m, l), Error (m', l') ->
      Alcotest.(check string) (file ^ ": error message") m' m;
      if not (Loc.equal l l') then
        Alcotest.failf "%s: error at %s, reference %s" file (Loc.to_string l)
          (Loc.to_string l')
  | Ok _, Error (m, _) ->
      Alcotest.failf "%s: reference rejects (%s), scanner accepts" file m
  | Error (m, _), Ok _ ->
      Alcotest.failf "%s: scanner rejects (%s), reference accepts" file m

let test_lexer_equiv_tricky () =
  List.iter check_tokenize_equiv
    [
      (* heredoc with every interpolation shape *)
      "<?php $s = <<<EOT\nHello $name and {$a['x']}\n\
       also $obj->prop plus $_GET[id] and $arr[3]\nEOT;\n";
      (* nowdoc stays raw *)
      "<?php $s = <<<'EOT'\nraw $notinterp \\n {$x}\nEOT;\n";
      (* astral characters in strings, html and interpolation *)
      "<?php $e = \"smile \xF0\x9F\x98\x80 $v tail\"; $p = '\xE2\x82\xAC';";
      "<html>\xF0\x9F\x98\x80<?= $x ?>\xE2\x82\xAC</html>";
      (* escapes, legacy ${name}, backtick *)
      "<?php $q = \"a\\tb\\x41\\101${legacy}c\"; $b = `ls $dir`;";
      (* bare exponent rewinds both position and column *)
      "<?php $n = 1e; $m = 1E+; $f = 1.5e3;\n$g = 0x1F + 007 + .5;";
      (* close-tag semicolon synthesis and alternative syntax *)
      "<?php if ($a): ?><b><?php endif; ?>trailer";
      (* comments of all three kinds around a close tag *)
      "<?php /* multi\nline */ # hash ?> after\n<?php echo 'end'; // eof";
      (* lexer errors must agree too *)
      "<?php $s = 'unterminated";
      "<?php \x01";
    ]

(* The compat wrapper and the reference lexer agree on every fuzz
   seed the repository has accumulated. *)
let test_lexer_equiv_fuzz_seeds () =
  let dir = "fuzz_seeds" in
  let seeds =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".php")
    |> List.sort String.compare
  in
  if seeds = [] then Alcotest.fail "no fuzz seeds found";
  List.iter
    (fun f ->
      let path = Filename.concat dir f in
      check_tokenize_equiv ~file:path (Io.read_file path))
    seeds

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wap_php"
    [
      ( "lexer",
        [
          Alcotest.test_case "integers" `Quick test_lex_integers;
          Alcotest.test_case "floats" `Quick test_lex_floats;
          Alcotest.test_case "single quoted" `Quick test_lex_single_quoted;
          Alcotest.test_case "double quoted escapes" `Quick test_lex_double_quoted_escapes;
          Alcotest.test_case "interpolation: simple" `Quick test_lex_interpolation_simple;
          Alcotest.test_case "interpolation: index" `Quick test_lex_interpolation_index;
          Alcotest.test_case "interpolation: prop/complex" `Quick
            test_lex_interpolation_prop_and_complex;
          Alcotest.test_case "heredoc" `Quick test_lex_heredoc;
          Alcotest.test_case "nowdoc" `Quick test_lex_nowdoc;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "keywords case-insensitive" `Quick
            test_lex_keywords_case_insensitive;
          Alcotest.test_case "operators longest match" `Quick
            test_lex_operators_longest_match;
          Alcotest.test_case "inline html" `Quick test_lex_inline_html;
          Alcotest.test_case "close tag semicolon" `Quick test_lex_close_tag_no_double_semi;
          Alcotest.test_case "error: unterminated string" `Quick
            test_lex_error_unterminated_string;
          Alcotest.test_case "error: bad char" `Quick test_lex_error_bad_char;
          Alcotest.test_case "location tracking" `Quick test_loc_tracking;
        ] );
      ( "parser",
        [
          Alcotest.test_case "arithmetic precedence" `Quick test_parse_precedence_arith;
          Alcotest.test_case "concat associativity" `Quick test_parse_concat_assoc;
          Alcotest.test_case "pow right assoc" `Quick test_parse_pow_right_assoc;
          Alcotest.test_case "assignment chain" `Quick test_parse_assignment_chain;
          Alcotest.test_case "assign by reference" `Quick test_parse_assign_ref;
          Alcotest.test_case "compound assign" `Quick test_parse_compound_assign;
          Alcotest.test_case "ternary / elvis" `Quick test_parse_ternary_and_elvis;
          Alcotest.test_case "null coalesce" `Quick test_parse_coalesce;
          Alcotest.test_case "cast vs paren" `Quick test_parse_cast_vs_paren;
          Alcotest.test_case "method call chain" `Quick test_parse_call_chains;
          Alcotest.test_case "static access" `Quick test_parse_static_access;
          Alcotest.test_case "arrays" `Quick test_parse_arrays;
          Alcotest.test_case "variable variable" `Quick test_parse_variable_variable;
          Alcotest.test_case "closure" `Quick test_parse_closure;
          Alcotest.test_case "if chain" `Quick test_parse_if_chain;
          Alcotest.test_case "alternative syntax" `Quick test_parse_alt_syntax;
          Alcotest.test_case "loops" `Quick test_parse_loops;
          Alcotest.test_case "switch" `Quick test_parse_switch;
          Alcotest.test_case "try/catch/finally" `Quick test_parse_try_catch;
          Alcotest.test_case "function definition" `Quick test_parse_function_def;
          Alcotest.test_case "class definition" `Quick test_parse_class;
          Alcotest.test_case "echo with commas" `Quick test_parse_echo_multi;
          Alcotest.test_case "interpolation to AST" `Quick test_parse_interp_becomes_ast;
          Alcotest.test_case "word operators" `Quick test_parse_word_ops_precedence;
          Alcotest.test_case "heredoc complex interpolation" `Quick
            test_parse_heredoc_complex;
          Alcotest.test_case "nested closures" `Quick test_parse_nested_closures;
          Alcotest.test_case "static closure" `Quick test_parse_static_closure;
          Alcotest.test_case "list() in foreach" `Quick test_parse_list_in_foreach;
          Alcotest.test_case "backtick" `Quick test_parse_backtick;
          Alcotest.test_case "short echo tag" `Quick test_parse_short_echo;
          Alcotest.test_case "new with dynamic class" `Quick
            test_parse_new_with_dynamic_class;
          Alcotest.test_case "error location" `Quick test_parse_error_reports_location;
          Alcotest.test_case "include / exit" `Quick test_parse_include_exit;
          Alcotest.test_case "tolerant: recovery" `Quick test_tolerant_parsing;
          Alcotest.test_case "tolerant: clean input" `Quick
            test_tolerant_parsing_clean_input;
          Alcotest.test_case "tolerant: lex error" `Quick test_tolerant_parsing_lex_error;
        ] );
      ( "printer",
        List.mapi
          (fun i src ->
            Alcotest.test_case (Printf.sprintf "stability sample %d" i) `Quick
              (test_print_parse_stable src))
          sample_sources
        @ [
            Alcotest.test_case "escape round trip" `Quick test_escape_round_trip;
            Alcotest.test_case "lexer: int overflow to float" `Quick
              test_lex_int_overflow;
            Alcotest.test_case "right-assoc ops keep parens" `Quick
              test_print_right_assoc_parens;
            Alcotest.test_case "nested unary sign" `Quick test_print_nested_unary;
            Alcotest.test_case "float spelling" `Quick test_print_float_spelling;
            Alcotest.test_case "backtick escape" `Quick test_print_backtick_escape;
          ] );
      ( "visitor",
        [
          Alcotest.test_case "named calls" `Quick test_visitor_named_calls;
          Alcotest.test_case "collect functions" `Quick test_visitor_collect_functions;
          Alcotest.test_case "map identity" `Quick test_visitor_map_expr_identity;
          Alcotest.test_case "map rewrites" `Quick test_visitor_map_expr_rewrites;
          Alcotest.test_case "stmt count" `Quick test_visitor_stmt_count;
        ] );
      ( "token buffer",
        [
          Alcotest.test_case "round trip" `Quick test_token_buf_roundtrip;
          Alcotest.test_case "loc packing" `Quick test_token_buf_loc_packing;
          Alcotest.test_case "interning identity" `Quick
            test_lexer_interning_identity;
          Alcotest.test_case "scanner equiv: tricky sources" `Quick
            test_lexer_equiv_tricky;
          Alcotest.test_case "scanner equiv: fuzz seeds" `Quick
            test_lexer_equiv_fuzz_seeds;
        ] );
      ( "properties",
        [
          qt qcheck_lexer_totality;
          qt qcheck_printer_idempotent;
          qt qcheck_int_literal_roundtrip;
          qt qcheck_string_literal_roundtrip;
        ] );
    ]
