(** Tests for the report renderers: tables, histograms, JSON. *)

module T = Wap_report.Table
module H = Wap_report.Histogram
module J = Wap_report.Json

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn > 0 && go 0

(* ------------------------------------------------------------------ *)
(* Tables.                                                             *)

let test_table_basic () =
  let t =
    T.make ~title:"demo" ~header:[ "name"; "count" ]
      [ [ "alpha"; "1" ]; [ "beta"; "22" ] ]
  in
  let s = T.render t in
  Alcotest.(check bool) "title" true (contains s "== demo ==");
  Alcotest.(check bool) "header" true (contains s "name");
  Alcotest.(check bool) "rows" true (contains s "alpha" && contains s "22")

let test_table_alignment () =
  let t =
    T.make ~title:"x" ~header:[ "l"; "r" ] ~aligns:[ T.L; T.R ]
      [ [ "a"; "1" ]; [ "bbbb"; "1234" ] ]
  in
  let lines = String.split_on_char '\n' (T.render t) in
  (* the left column pads right, the right column pads left *)
  Alcotest.(check bool) "left aligned" true
    (List.exists (fun l -> contains l "a    |") lines);
  Alcotest.(check bool) "right aligned" true
    (List.exists (fun l -> contains l "|    1") lines)

let test_table_separator_row () =
  let t =
    T.make ~title:"x" ~header:[ "a"; "b" ]
      [ [ "1"; "2" ]; [ "---"; "---" ]; [ "3"; "4" ] ]
  in
  let s = T.render t in
  (* the all-dashes row becomes a rule, not cells *)
  Alcotest.(check bool) "rule" true (contains s "--+-")

let test_table_helpers () =
  Alcotest.(check string) "pct" "94.5%" (T.pctf 0.945);
  Alcotest.(check string) "blank zero" "" (T.blank_if_zero 0);
  Alcotest.(check string) "nonzero" "7" (T.blank_if_zero 7);
  Alcotest.(check string) "intf" "42" (T.intf 42)

let test_table_ragged_rows () =
  (* missing trailing cells render as empty, no exception *)
  let t = T.make ~title:"x" ~header:[ "a"; "b"; "c" ] [ [ "1" ]; [ "1"; "2"; "3" ] ] in
  Alcotest.(check bool) "renders" true (String.length (T.render t) > 0)

(* ------------------------------------------------------------------ *)
(* Histograms.                                                         *)

let test_histogram () =
  let s =
    H.render ~title:"demo"
      [ { H.label = "one"; values = [ ("a", 10); ("b", 0) ] };
        { H.label = "two"; values = [ ("a", 5); ("b", 2) ] } ]
  in
  Alcotest.(check bool) "title" true (contains s "== demo ==");
  Alcotest.(check bool) "legend" true (contains s "# = one" && contains s "* = two");
  Alcotest.(check bool) "values shown" true (contains s "10" && contains s "2");
  (* the zero bar is empty *)
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "zero row" true
    (List.exists (fun l -> contains l "one" && contains l " 0") lines)

let test_histogram_scaling () =
  let s =
    H.render ~title:"x" [ { H.label = "s"; values = [ ("big", 1000); ("small", 1) ] } ]
  in
  (* the big bar is capped at ~40 chars *)
  let max_hashes =
    List.fold_left
      (fun acc line ->
        max acc (String.fold_left (fun n c -> if c = '#' then n + 1 else n) 0 line))
      0
      (String.split_on_char '\n' s)
  in
  Alcotest.(check bool) "bounded bars" true (max_hashes <= 41 && max_hashes >= 30)

(* ------------------------------------------------------------------ *)
(* JSON.                                                               *)

let test_json_scalars () =
  Alcotest.(check string) "null" "null" (J.to_string ~indent:false J.Null);
  Alcotest.(check string) "bool" "true" (J.to_string ~indent:false (J.Bool true));
  Alcotest.(check string) "int" "-3" (J.to_string ~indent:false (J.Int (-3)));
  Alcotest.(check string) "str" "\"hi\"" (J.to_string ~indent:false (J.Str "hi"))

let test_json_escaping () =
  Alcotest.(check string) "escapes" "\"a\\\"b\\\\c\\nd\\te\""
    (J.to_string ~indent:false (J.Str "a\"b\\c\nd\te"));
  Alcotest.(check string) "control chars" "\"\\u0001\""
    (J.to_string ~indent:false (J.Str "\001"))

let test_json_structures () =
  let v =
    J.Obj [ ("xs", J.List [ J.Int 1; J.Int 2 ]); ("o", J.Obj [ ("k", J.Null) ]) ]
  in
  Alcotest.(check string) "compact" "{\"xs\":[1,2],\"o\":{\"k\":null}}"
    (J.to_string ~indent:false v);
  let pretty = J.to_string ~indent:true v in
  Alcotest.(check bool) "pretty has newlines" true (contains pretty "\n");
  Alcotest.(check string) "empty obj" "{}" (J.to_string ~indent:false (J.Obj []));
  Alcotest.(check string) "empty list" "[]" (J.to_string ~indent:false (J.List []))

let test_json_floats () =
  Alcotest.(check string) "integral float" "2.0" (J.to_string ~indent:false (J.Float 2.0));
  Alcotest.(check bool) "fractional" true
    (contains (J.to_string ~indent:false (J.Float 0.25)) "0.25")

let test_json_unicode_escapes () =
  (* astral code points escape as a UTF-16 surrogate pair in ASCII mode
     and decode back to the same UTF-8 *)
  let smile = "\xf0\x9f\x98\x80" (* U+1F600 *) in
  let ascii = J.to_string_ascii ~indent:false (J.Str smile) in
  Alcotest.(check string) "surrogate pair" "\"\\ud83d\\ude00\""
    (String.lowercase_ascii ascii);
  (match J.of_string ascii with
  | Ok (J.Str s) -> Alcotest.(check string) "pair decodes to UTF-8" smile s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse error: %s" e);
  (match J.of_string "\"\\uD83D\"" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lone high surrogate must be rejected");
  (match J.of_string "\"\\uDE00x\"" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lone low surrogate must be rejected");
  (* malformed UTF-8 degrades to U+FFFD instead of emitting raw bytes *)
  let out = J.to_string_ascii ~indent:false (J.Str "\xff") in
  Alcotest.(check string) "replacement char" "\"\\ufffd\""
    (String.lowercase_ascii out)

let test_json_ascii_roundtrip () =
  let v =
    J.Obj
      [
        ("k\xf0\x9f\x98\x80", J.Str "caf\xc3\xa9\n\xf0\x9f\x98\x80");
        ("n", J.Float 1.5);
      ]
  in
  match (J.of_string (J.to_string_ascii v), J.of_string (J.to_string v)) with
  | Ok a, Ok b ->
      Alcotest.(check string) "ascii output round-trips to the UTF-8 output"
        (J.to_string b) (J.to_string a)
  | Error e, _ | _, Error e -> Alcotest.failf "parse error: %s" e

(* ------------------------------------------------------------------ *)
(* Export (findings to JSON).                                          *)

let test_html_render () =
  let page =
    Wap_report.Html.render
      {
        Wap_report.Html.title = "demo <&>";
        generated_by = "tests";
        rows =
          [ { Wap_report.Html.r_kind = `Vulnerability; r_class = "SQLI";
              r_file = "a.php"; r_line = 7; r_sink = "mysql_query";
              r_source = "$_GET['id']"; r_symptoms = [ "concat_op" ];
              r_steps = [ ("a.php", 3, "$q = \"<x>\"") ];
              r_confirmation = Some "exploit confirmed" };
            { Wap_report.Html.r_kind = `False_positive; r_class = "XSS-R";
              r_file = "b.php"; r_line = 2; r_sink = "echo"; r_source = "$_GET['m']";
              r_symptoms = []; r_steps = []; r_confirmation = None } ];
      }
  in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains page needle))
    [ "<!DOCTYPE html>"; "demo &lt;&amp;&gt;"; "a.php:7"; "mysql_query";
      "exploit confirmed"; "&lt;x&gt;"; "1 vulnerability(ies)" ];
  Alcotest.(check bool) "raw angle brackets escaped" false (contains page "$q = \"<x>\"")

let test_html_escape () =
  Alcotest.(check string) "escape" "&lt;a href=&quot;x&amp;y&quot;&gt;"
    (Wap_report.Html.escape "<a href=\"x&y\">")

let test_tolerant_analysis () =
  (* a broken file does not abort the scan and still yields its findings *)
  let tool = Wap_core.Tool.create ~seed:2016 Wap_core.Version.Wape in
  let o =
    Wap_core.Tool.Scan.run tool
      (Wap_core.Tool.Scan.request
         [ ("ok.php", "<?php\necho $_GET['m'];\n");
           ("broken.php", "<?php\n$x = ;\nmysql_query('SELECT * FROM t WHERE c = ' . $_GET['c']);\n") ])
  in
  let result = o.Wap_core.Tool.Scan.result
  and errors = o.Wap_core.Tool.Scan.parse_errors in
  Alcotest.(check int) "errors from one file" 1 (List.length errors);
  Alcotest.(check int) "both findings present" 2
    (List.length result.Wap_core.Tool.candidates)

let test_export_shape () =
  let tool = Wap_core.Tool.create ~seed:2016 Wap_core.Version.Wape in
  let src = "<?php\nmysql_query('SELECT * FROM t WHERE c = ' . $_GET['c']);\n" in
  let result =
    (Wap_core.Tool.Scan.run tool (Wap_core.Tool.Scan.request [ ("x.php", src) ]))
      .Wap_core.Tool.Scan.result
  in
  let s = Wap_core.Export.result_to_string result in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains s needle))
    [ "\"findings\""; "\"class\": \"SQLI\""; "\"sink\": \"mysql_query\"";
      "\"vulnerabilities\": 1"; "\"symptoms\"" ];
  let s2 = Wap_core.Export.result_to_string ~confirm:true result in
  Alcotest.(check bool) "confirmation attached" true
    (contains s2 "\"dynamic_confirmation\": \"confirmed\"")

let qcheck_json_never_raises =
  QCheck.Test.make ~name:"json escaping total" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 0 50) Gen.char)
    (fun s ->
      let out = J.to_string (J.Str s) in
      String.length out >= String.length s)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wap_report"
    [
      ( "tables",
        [
          Alcotest.test_case "basic" `Quick test_table_basic;
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "separator row" `Quick test_table_separator_row;
          Alcotest.test_case "helpers" `Quick test_table_helpers;
          Alcotest.test_case "ragged rows" `Quick test_table_ragged_rows;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "render" `Quick test_histogram;
          Alcotest.test_case "scaling" `Quick test_histogram_scaling;
        ] );
      ( "json",
        [
          Alcotest.test_case "scalars" `Quick test_json_scalars;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "structures" `Quick test_json_structures;
          Alcotest.test_case "floats" `Quick test_json_floats;
          Alcotest.test_case "unicode escapes" `Quick test_json_unicode_escapes;
          Alcotest.test_case "ascii round trip" `Quick test_json_ascii_roundtrip;
        ] );
      ( "html",
        [
          Alcotest.test_case "render" `Quick test_html_render;
          Alcotest.test_case "escape" `Quick test_html_escape;
        ] );
      ( "export",
        [
          Alcotest.test_case "findings shape" `Slow test_export_shape;
          Alcotest.test_case "tolerant multi-file analysis" `Slow
            test_tolerant_analysis;
        ] );
      ("properties", [ qt qcheck_json_never_raises ]);
    ]
