(** The LSP diagnostics daemon, driven in-process: protocol framing,
    the initialize handshake, diagnostics published on open/change and
    cleared by a sanitizing edit, code actions carrying working fixes,
    and error responses for unknown methods. *)

module J = Wap_report.Json
module Rpc = Wap_serve.Rpc
module Server = Wap_serve.Server

let tool = lazy (Wap_core.Tool.create ~seed:2016 Wap_core.Version.Wape)
let server () = Server.create ~jobs:1 (Lazy.force tool)

let vuln_php =
  "<?php $id = $_GET['id']; $r = mysql_query(\"SELECT * FROM t WHERE id = \" \
   . $id); ?>"

let safe_php =
  "<?php $id = mysql_real_escape_string($_GET['id']); $r = \
   mysql_query(\"SELECT * FROM t WHERE id = \" . $id); ?>"

let uri = "file:///tmp/a.php"

(* ------------------------------------------------------------------ *)
(* Message builders / accessors.                                       *)

let req id meth params =
  J.Obj
    [
      ("jsonrpc", J.Str "2.0");
      ("id", J.Int id);
      ("method", J.Str meth);
      ("params", params);
    ]

let notif meth params =
  J.Obj [ ("jsonrpc", J.Str "2.0"); ("method", J.Str meth); ("params", params) ]

let did_open ~text =
  notif "textDocument/didOpen"
    (J.Obj
       [ ("textDocument", J.Obj [ ("uri", J.Str uri); ("text", J.Str text) ]) ])

let did_change ~text =
  notif "textDocument/didChange"
    (J.Obj
       [
         ("textDocument", J.Obj [ ("uri", J.Str uri) ]);
         ("contentChanges", J.List [ J.Obj [ ("text", J.Str text) ] ]);
       ])

let publishes msgs =
  List.filter_map
    (fun m ->
      if Rpc.meth m = Some "textDocument/publishDiagnostics" then
        match J.member "diagnostics" (Rpc.params m) with
        | Some diags -> Option.map (fun l -> (Rpc.params m, l)) (J.to_list_opt diags)
        | None -> None
      else None)
    msgs

let the_publish name msgs =
  match publishes msgs with
  | [ (params, diags) ] ->
      Alcotest.(check (option string))
        (name ^ ": published under the opened uri")
        (Some uri)
        (Rpc.str_member "uri" params);
      diags
  | l ->
      Alcotest.failf "%s: expected exactly one publishDiagnostics, got %d" name
        (List.length l)

(* ------------------------------------------------------------------ *)

let test_initialize () =
  let t = server () in
  match Server.handle t (req 1 "initialize" (J.Obj [])) with
  | [ resp ] ->
      let result = Option.get (J.member "result" resp) in
      let caps = Option.get (J.member "capabilities" result) in
      Alcotest.(check (option int))
        "id echoed" (Some 1)
        (Rpc.int_member "id" resp);
      Alcotest.(check bool) "code actions offered" true
        (J.member "codeActionProvider" caps = Some (J.Bool true));
      Alcotest.(check (option int))
        "full-document sync"
        (Some 1)
        (Option.bind (J.member "textDocumentSync" caps) (Rpc.int_member "change"))
  | l -> Alcotest.failf "expected one response, got %d" (List.length l)

let test_diagnostics_lifecycle () =
  let t = server () in
  ignore (Server.handle t (req 1 "initialize" (J.Obj [])));
  (* open a vulnerable document: one SQLI diagnostic at severity 1 *)
  let diags = the_publish "didOpen" (Server.handle t (did_open ~text:vuln_php)) in
  Alcotest.(check int) "one diagnostic" 1 (List.length diags);
  let d = List.hd diags in
  Alcotest.(check (option string)) "SQLI" (Some "SQLI") (Rpc.str_member "code" d);
  Alcotest.(check (option int)) "error severity" (Some 1) (Rpc.int_member "severity" d);
  Alcotest.(check bool) "message names the flow" true
    (match Rpc.str_member "message" d with
    | Some m ->
        let has sub =
          let n = String.length sub in
          let rec go i =
            i + n <= String.length m && (String.sub m i n = sub || go (i + 1))
          in
          go 0
        in
        has "mysql_query" && has "$_GET"
    | None -> false);
  (* a sanitizing edit clears the diagnostic (and the clear is
     published, because the rendered diagnostics changed) *)
  let diags =
    the_publish "didChange" (Server.handle t (did_change ~text:safe_php))
  in
  Alcotest.(check int) "cleared after sanitizing edit" 0 (List.length diags);
  (* an identical edit publishes nothing: diagnostics did not change *)
  Alcotest.(check int) "no-op edit publishes nothing" 0
    (List.length (publishes (Server.handle t (did_change ~text:safe_php))));
  (* re-introducing the flaw republishes *)
  let diags =
    the_publish "re-break" (Server.handle t (did_change ~text:vuln_php))
  in
  Alcotest.(check int) "diagnostic back" 1 (List.length diags);
  (* closing the document clears its diagnostics on the client *)
  let close =
    Server.handle t
      (notif "textDocument/didClose"
         (J.Obj [ ("textDocument", J.Obj [ ("uri", J.Str uri) ]) ]))
  in
  Alcotest.(check int) "close clears" 0
    (List.length (the_publish "didClose" close))

let test_code_actions_fix_the_flaw () =
  let t = server () in
  ignore (Server.handle t (req 1 "initialize" (J.Obj [])));
  ignore (Server.handle t (did_open ~text:vuln_php));
  let whole_doc =
    J.Obj
      [
        ( "start",
          J.Obj [ ("line", J.Int 0); ("character", J.Int 0) ] );
        ("end", J.Obj [ ("line", J.Int 99); ("character", J.Int 0) ]);
      ]
  in
  let actions =
    match
      Server.handle t
        (req 2 "textDocument/codeAction"
           (J.Obj
              [
                ("textDocument", J.Obj [ ("uri", J.Str uri) ]);
                ("range", whole_doc);
              ]))
    with
    | [ resp ] ->
        Option.get (J.to_list_opt (Option.get (J.member "result" resp)))
    | _ -> Alcotest.fail "expected one codeAction response"
  in
  (* the three fixer templates: stock fix, user sanitization, user
     validation *)
  Alcotest.(check int) "three quick fixes" 3 (List.length actions);
  let new_text_of action =
    let edit = Option.get (J.member "edit" action) in
    match J.member "changes" edit with
    | Some (J.Obj [ (u, J.List [ change ]) ]) ->
        Alcotest.(check string) "edit targets the document" uri u;
        Option.get (Rpc.str_member "newText" change)
    | _ -> Alcotest.fail "workspace edit shape"
  in
  let has sub s =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun action ->
      Alcotest.(check (option string))
        "kind" (Some "quickfix")
        (Rpc.str_member "kind" action);
      let fixed = new_text_of action in
      Alcotest.(check bool) "edit rewrites the document" true
        (fixed <> vuln_php);
      (* every edit yields parseable PHP that wraps the sink in a fix
         call and defines the fix function *)
      let _, errors = Wap_php.Parser.parse_string_tolerant ~file:"a.php" fixed in
      Alcotest.(check int) "fixed source parses" 0 (List.length errors))
    actions;
  (* the class's stock fix is a known sanitizer: applying its edit must
     silence the diagnostic.  (The user sanitization/validation
     templates silence once their generated function is registered via
     --sanitizer, the extra-sanitizers mechanism.) *)
  let stock =
    List.find
      (fun a ->
        match Rpc.str_member "title" a with
        | Some title -> has "san_sqli" title
        | None -> false)
      actions
  in
  let fixed = new_text_of stock in
  Alcotest.(check bool) "stock edit defines the fix" true
    (has "san_sqli" fixed);
  let diags =
    the_publish "after stock fix" (Server.handle t (did_change ~text:fixed))
  in
  Alcotest.(check int) "stock fix silences the diagnostic" 0
    (List.length diags)

let test_unknown_method_and_exit () =
  let t = server () in
  (match Server.handle t (req 7 "foo/bar" J.Null) with
  | [ resp ] ->
      let err = Option.get (J.member "error" resp) in
      Alcotest.(check (option int))
        "method not found" (Some (-32601))
        (Rpc.int_member "code" err)
  | _ -> Alcotest.fail "expected one error response");
  Alcotest.(check int) "unknown notification ignored" 0
    (List.length (Server.handle t (notif "foo/baz" J.Null)));
  (match Server.handle t (req 8 "shutdown" J.Null) with
  | [ resp ] ->
      Alcotest.(check bool) "shutdown returns null" true
        (J.member "result" resp = Some J.Null)
  | _ -> Alcotest.fail "expected one shutdown response");
  Alcotest.(check bool) "not finished before exit" false (Server.finished t);
  Alcotest.(check int) "exit is silent" 0
    (List.length (Server.handle t (notif "exit" J.Null)));
  Alcotest.(check bool) "finished after exit" true (Server.finished t)

(* ------------------------------------------------------------------ *)
(* Framing.                                                            *)

let test_framing_roundtrip () =
  let path = Filename.temp_file "wap_serve" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with _ -> ())
    (fun () ->
      let m1 = req 1 "initialize" (J.Obj []) in
      let m2 = notif "exit" (J.Obj [ ("unicode", J.Str "caf\xc3\xa9 \"q\"") ]) in
      let oc = open_out_bin path in
      Rpc.write_message oc m1;
      Rpc.write_message oc m2;
      close_out oc;
      let ic = open_in_bin path in
      let read () =
        match Rpc.read_message ic with
        | Some (Ok m) -> m
        | Some (Error e) -> Alcotest.failf "framing error: %s" e
        | None -> Alcotest.fail "unexpected end of stream"
      in
      let m1' = read () and m2' = read () in
      Alcotest.(check bool) "first message round-trips" true (m1 = m1');
      Alcotest.(check bool) "second message round-trips" true (m2 = m2');
      Alcotest.(check bool) "clean EOF" true (Rpc.read_message ic = None);
      close_in ic)

let test_framing_errors () =
  let read_of s =
    let path = Filename.temp_file "wap_serve" ".bin" in
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc;
    let ic = open_in_bin path in
    let r = Rpc.read_message ic in
    close_in ic;
    (try Sys.remove path with _ -> ());
    r
  in
  (match read_of "X-Other: 1\r\n\r\n{}" with
  | Some (Error e) ->
      Alcotest.(check bool) "missing Content-Length reported" true
        (e <> "")
  | _ -> Alcotest.fail "expected an error for missing Content-Length");
  (match read_of "Content-Length: 2\r\n\r\n{]" with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "expected a JSON error");
  (match read_of "Content-Length: 50\r\n\r\n{}" with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "expected a truncated-body error");
  match read_of "" with
  | None -> ()
  | _ -> Alcotest.fail "expected clean EOF"

(* ------------------------------------------------------------------ *)
(* Admin plane: routed through {!Admin.handle_path} directly, so every
   endpoint is exercised without a socket.                             *)

module Admin = Wap_serve.Admin
module Metrics = Wap_obs.Metrics
module Expo = Wap_obs.Expo

let test_admin_plane () =
  Metrics.reset Metrics.global;
  let t = server () in
  let src = Server.admin_source t in
  let get path = Admin.handle_path src path in
  (* liveness is unconditional; readiness needs an open session *)
  Alcotest.(check int) "/healthz answers 200" 200 (get "/healthz").Admin.code;
  Alcotest.(check int) "/readyz is 503 before a session opens" 503
    (get "/readyz").Admin.code;
  Alcotest.(check int) "unknown path answers 404" 404 (get "/nope").Admin.code;
  ignore (Server.handle t (req 1 "initialize" (J.Obj [])));
  ignore (Server.handle t (did_open ~text:vuln_php));
  Alcotest.(check int) "/readyz flips to 200 after didOpen" 200
    (get "/readyz").Admin.code;
  (* /status: one JSON document of operational facts *)
  let st = get "/status" in
  Alcotest.(check string) "/status is JSON" "application/json"
    st.Admin.content_type;
  (match J.of_string st.Admin.body with
  | Error e -> Alcotest.failf "/status does not parse: %s" e
  | Ok doc ->
      Alcotest.(check bool) "ready:true" true
        (J.member "ready" doc = Some (J.Bool true));
      Alcotest.(check (option int)) "one open document" (Some 1)
        (Rpc.int_member "open_documents" doc));
  (* /metrics: survives our own strict parser and shows the request *)
  let m = get "/metrics" in
  Alcotest.(check int) "/metrics answers 200" 200 m.Admin.code;
  (match Expo.parse_text m.Admin.body with
  | Error e -> Alcotest.failf "/metrics fails the strict parser: %s" e
  | Ok p ->
      let did_open_count =
        List.find_opt
          (fun s ->
            s.Expo.s_name = "wap_serve_request_seconds_count"
            && List.assoc_opt "method" s.Expo.s_labels
               = Some "textDocument/didOpen")
          p.Expo.p_samples
      in
      match did_open_count with
      | Some s ->
          Alcotest.(check (float 0.)) "one didOpen latency observed" 1.0
            s.Expo.s_value
      | None -> Alcotest.fail "didOpen latency histogram not exported");
  (* /trace: a well-formed Chrome document even with no tracer installed *)
  let tr = get "/trace" in
  Alcotest.(check int) "/trace answers 200" 200 tr.Admin.code;
  match J.of_string tr.Admin.body with
  | Error e -> Alcotest.failf "/trace does not parse: %s" e
  | Ok doc ->
      Alcotest.(check bool) "traceEvents array present" true
        (Option.bind (J.member "traceEvents" doc) J.to_list_opt <> None)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "initialize" `Quick test_initialize;
          Alcotest.test_case "diagnostics lifecycle" `Slow
            test_diagnostics_lifecycle;
          Alcotest.test_case "code actions fix the flaw" `Slow
            test_code_actions_fix_the_flaw;
          Alcotest.test_case "unknown method / shutdown / exit" `Quick
            test_unknown_method_and_exit;
        ] );
      ( "framing",
        [
          Alcotest.test_case "round-trip" `Quick test_framing_roundtrip;
          Alcotest.test_case "errors" `Quick test_framing_errors;
        ] );
      ( "admin",
        [ Alcotest.test_case "handle_path endpoints" `Slow test_admin_plane ] );
    ]
