(** The session-oriented engine: targeted invalidation on
    edit/add/remove (observed through generation-tagged progress
    events), and equivalence of the incremental session with a fresh
    batch scan over the same sources. *)

module S = Wap_engine.Session
module T = Wap_core.Tool
module Trace = Wap_taint.Trace

let seed = 2016
let wape = lazy (T.create ~seed Wap_core.Version.Wape)
let specs () = (Lazy.force wape).T.specs

(* A small project exercising every invalidation rule: an
   interprocedural flow through [lib.php]'s function summary, a
   function-free vulnerable file, and an include pair. *)
let lib_php =
  "<?php function fetch($id) { return mysql_query(\"SELECT * FROM t WHERE id \
   = \" . $id); } ?>"

let vuln_php = "<?php $r = fetch($_GET['id']); echo $_GET['name']; ?>"
let inc_php = "<?php $x = $_GET['x']; ?>"
let main_php = "<?php include 'inc.php'; echo $x; ?>"

let project () =
  [
    ("lib.php", lib_php);
    ("vuln.php", vuln_php);
    ("inc.php", inc_php);
    ("main.php", main_php);
  ]

(* The invalidation tests pin [fuse:true]: targeted per-file
   invalidation (and its [File_analyzed] events) is a property of the
   fused pipeline, so these assertions must not float with the
   [WAP_FUSE] environment gate CI flips. *)
let request ?(jobs = 1) ?(fuse = true) files =
  S.request ~jobs ~fuse ~specs:(specs ()) files

(* The equivalence tests resolve [fuse]/[ir] through {!Config} like any
   client, so the WAP_FUSE=0 / WAP_IR=0 CI lanes exercise them in
   per-spec and AST-walker modes too. *)
let request_env ?(jobs = 1) files = S.request ~jobs ~specs:(specs ()) files

(* Record generation-tagged events; [analyzed ~gen] lists the paths
   whose (re-)analysis the given generation performed, in event
   order. *)
let recorder () =
  let events : S.event list ref = ref [] in
  ((fun ev -> events := ev :: !events), events)

let analyzed ~gen events =
  List.rev !events
  |> List.filter_map (fun (ev : S.event) ->
         match ev.S.progress with
         | S.File_analyzed { path; _ } when ev.S.generation = gen -> Some path
         | _ -> None)

let sorted = List.sort compare

(* ------------------------------------------------------------------ *)

let test_open_analyzes_everything () =
  let on_event, events = recorder () in
  let s = S.open_project ~on_event (request (project ())) in
  Alcotest.(check int) "generation 0 after open" 0 (S.generation s);
  Alcotest.(check (list string))
    "open analyzes every file"
    (sorted (List.map fst (project ())))
    (sorted (analyzed ~gen:0 events));
  Alcotest.(check (list string))
    "paths in project order"
    (List.map fst (project ()))
    (S.paths s);
  Alcotest.(check bool) "mem known" true (S.mem s ~path:"vuln.php");
  Alcotest.(check bool) "mem unknown" false (S.mem s ~path:"nope.php")

let test_summary_preserving_edit_is_local () =
  let on_event, events = recorder () in
  let s = S.open_project ~on_event (request (project ())) in
  (* vuln.php defines no functions: its function-summary fingerprint
     cannot change, so only its own top-level pass re-runs *)
  let reran =
    S.update_file s ~path:"vuln.php"
      "<?php $r = fetch($_GET['id2']); echo $_GET['name']; ?>"
  in
  Alcotest.(check (list string)) "only the edited file" [ "vuln.php" ] reran;
  Alcotest.(check int) "generation bumped" 1 (S.generation s);
  Alcotest.(check (list string))
    "one re-analysis event, tagged generation 1" [ "vuln.php" ]
    (analyzed ~gen:1 events)

let test_code_after_functions_is_local () =
  let on_event, events = recorder () in
  let s = S.open_project ~on_event (request (project ())) in
  (* appending top-level code after the function leaves every declared
     function (bodies and locations) intact: the fingerprint is
     unchanged and the edit stays local despite the file defining a
     function *)
  let reran =
    S.update_file s ~path:"lib.php"
      "<?php function fetch($id) { return mysql_query(\"SELECT * FROM t \
       WHERE id = \" . $id); } $unused = 1; ?>"
  in
  Alcotest.(check (list string)) "only the edited file" [ "lib.php" ] reran;
  Alcotest.(check (list string))
    "one re-analysis event" [ "lib.php" ]
    (analyzed ~gen:1 events)

let test_summary_changing_edit_reanalyzes_project () =
  let on_event, events = recorder () in
  let s = S.open_project ~on_event (request (project ())) in
  (* changing [fetch]'s body changes its summary; with interprocedural
     analysis on, every caller may be affected -> full re-analysis *)
  let reran =
    S.update_file s ~path:"lib.php"
      "<?php function fetch($id) { return mysql_query(\"DELETE FROM t WHERE \
       id = \" . $id); } ?>"
  in
  Alcotest.(check (list string))
    "every file re-analyzed"
    (sorted (List.map fst (project ())))
    (sorted reran);
  Alcotest.(check (list string))
    "events cover the project"
    (sorted (List.map fst (project ())))
    (sorted (analyzed ~gen:1 events))

let test_include_dependents_rerun () =
  let on_event, events = recorder () in
  let s = S.open_project ~on_event (request (project ())) in
  (* main.php splices inc.php at top level: editing the includee
     re-runs the includer too (inc.php has no functions, so nothing
     else) *)
  let reran = S.update_file s ~path:"inc.php" "<?php $x = $_GET['y']; ?>" in
  Alcotest.(check (list string))
    "includee + includer"
    [ "inc.php"; "main.php" ]
    (sorted reran);
  Alcotest.(check (list string))
    "matching events"
    [ "inc.php"; "main.php" ]
    (sorted (analyzed ~gen:1 events))

let test_add_and_remove () =
  let on_event, events = recorder () in
  let s = S.open_project ~on_event (request (project ())) in
  let reran = S.add_file s ~path:"extra.php" "<?php echo $_GET['e']; ?>" in
  Alcotest.(check (list string)) "added file analyzed" [ "extra.php" ] reran;
  Alcotest.(check (list string))
    "add event at generation 1" [ "extra.php" ]
    (analyzed ~gen:1 events);
  Alcotest.(check bool) "now a member" true (S.mem s ~path:"extra.php");
  Alcotest.check_raises "duplicate add rejected"
    (Invalid_argument "Session.add_file: file \"extra.php\" already in project")
    (fun () -> ignore (S.add_file s ~path:"extra.php" "<?php ?>"));
  (* removing the includee re-runs only the includer *)
  let reran = S.remove_file s ~path:"inc.php" in
  Alcotest.(check (list string)) "includer re-ran" [ "main.php" ] reran;
  Alcotest.(check bool) "gone" false (S.mem s ~path:"inc.php");
  Alcotest.(check (list string)) "unknown remove is a no-op" []
    (S.remove_file s ~path:"inc.php");
  Alcotest.(check int) "no-op does not bump the generation" 2 (S.generation s)

let test_update_unknown_raises () =
  let s = S.open_project (request (project ())) in
  Alcotest.check_raises "unknown update rejected"
    (Invalid_argument "Session.update_file: no file \"nope.php\" in project")
    (fun () -> ignore (S.update_file s ~path:"nope.php" "<?php ?>"))

let test_event_generations_monotonic () =
  let on_event, events = recorder () in
  let s = S.open_project ~on_event (request (project ())) in
  ignore (S.update_file s ~path:"vuln.php" vuln_php);
  ignore (S.add_file s ~path:"extra.php" "<?php echo $_GET['e']; ?>");
  ignore (S.remove_file s ~path:"extra.php");
  Alcotest.(check int) "three mutations" 3 (S.generation s);
  let gens = List.rev_map (fun (ev : S.event) -> ev.S.generation) !events in
  Alcotest.(check bool) "generations non-decreasing" true
    (List.for_all2 ( <= ) gens (List.tl gens @ [ max_int ]));
  (* generation 3 removes a file nothing depends on: no re-analysis,
     hence no events — only 0..2 must appear *)
  Alcotest.(check bool) "events span generations 0-2" true
    (List.for_all (fun g -> List.mem g gens) [ 0; 1; 2 ]);
  Alcotest.(check bool) "no event exceeds the session generation" true
    (List.for_all (fun g -> g <= S.generation s) gens)

(* ------------------------------------------------------------------ *)
(* Session export = fresh batch scan over the final sources.           *)

(* The deterministic surface of an engine outcome: everything except
   wall-clock (timings differ run to run by construction). *)
let render (o : S.outcome) : string =
  String.concat "\n"
    (List.map Trace.show_candidate o.S.candidates
    @ List.map
        (fun (fr : S.file_report) ->
          Printf.sprintf "file %s cached=%b errors=%d" fr.S.fr_path
            fr.S.fr_cached
            (List.length fr.S.fr_errors))
        o.S.file_reports
    @ List.map
        (fun (sr : S.spec_report) ->
          Printf.sprintf "spec %s candidates=%d" sr.S.sr_spec
            sr.S.sr_candidates)
        o.S.spec_reports
    @ [ Printf.sprintf "jobs=%d" o.S.jobs_used ])

let test_export_matches_fresh_scan () =
  List.iter
    (fun jobs ->
      let s = S.open_project (request_env ~jobs (project ())) in
      ignore
        (S.update_file s ~path:"vuln.php"
           "<?php $r = fetch($_GET['id']); echo $_POST['name']; ?>");
      ignore (S.add_file s ~path:"extra.php" "<?php echo $_GET['e']; ?>");
      ignore (S.remove_file s ~path:"inc.php");
      ignore
        (S.update_file s ~path:"lib.php"
           "<?php function fetch($id) { return mysql_query(\"DELETE FROM t \
            WHERE id = \" . $id); } ?>");
      let final_sources =
        [
          ( "lib.php",
            "<?php function fetch($id) { return mysql_query(\"DELETE FROM t \
             WHERE id = \" . $id); } ?>" );
          ("vuln.php", "<?php $r = fetch($_GET['id']); echo $_POST['name']; ?>");
          ("main.php", main_php);
          ("extra.php", "<?php echo $_GET['e']; ?>");
        ]
      in
      Alcotest.(check (list string))
        (Printf.sprintf "project order after mutations (jobs=%d)" jobs)
        (List.map fst final_sources) (S.paths s);
      Alcotest.(check string)
        (Printf.sprintf "session export = fresh scan (jobs=%d)" jobs)
        (render (S.run (request_env ~jobs final_sources)))
        (render (S.export s)))
    [ 1; 4 ]

let test_per_spec_mode_mutations () =
  (* the per-spec escape hatch has no per-file invalidation: every
     mutation re-runs the stage, returning every path — and the export
     still matches a fresh per-spec scan *)
  let s = S.open_project (request ~fuse:false (project ())) in
  let edited = "<?php $r = fetch($_GET['id2']); ?>" in
  let reran = S.update_file s ~path:"vuln.php" edited in
  Alcotest.(check (list string))
    "per-spec update re-runs the whole stage"
    (List.map fst (project ()))
    reran;
  let final_sources =
    List.map
      (fun (p, src) -> if p = "vuln.php" then (p, edited) else (p, src))
      (project ())
  in
  Alcotest.(check string) "per-spec export = fresh per-spec scan"
    (render (S.run (request ~fuse:false final_sources)))
    (render (S.export s))

let test_diagnostics_partition_export () =
  let s = S.open_project (request_env (project ())) in
  let all = S.all_diagnostics s in
  Alcotest.(check bool) "project has findings" true (List.length all > 0);
  (* per-file views partition the full view *)
  let by_path =
    List.concat_map (fun p -> S.diagnostics s ~path:p) (S.paths s)
  in
  Alcotest.(check (list string))
    "per-file diagnostics partition the project view"
    (sorted (List.map (fun (_, c) -> Trace.summary c) all))
    (sorted (List.map (fun (_, c) -> Trace.summary c) by_path));
  List.iter
    (fun p ->
      List.iter
        (fun ((_, c) : int * Trace.candidate) ->
          Alcotest.(check string) "sink file matches the queried path" p
            c.Trace.file)
        (S.diagnostics s ~path:p))
    (S.paths s);
  (* the finalized view is memoized per generation: repeated calls are
     consistent *)
  Alcotest.(check int) "stable across calls" (List.length all)
    (List.length (S.all_diagnostics s));
  (* export's candidates line up with the diagnostics view *)
  let o = S.export s in
  Alcotest.(check (list string))
    "diagnostics = export candidates"
    (List.map Trace.summary o.S.candidates)
    (List.map (fun (_, c) -> Trace.summary c) all)

let () =
  Alcotest.run "session"
    [
      ( "invalidation",
        [
          Alcotest.test_case "open analyzes everything" `Quick
            test_open_analyzes_everything;
          Alcotest.test_case "summary-preserving edit is local" `Quick
            test_summary_preserving_edit_is_local;
          Alcotest.test_case "top-level code after functions stays local"
            `Quick test_code_after_functions_is_local;
          Alcotest.test_case "summary-changing edit re-analyzes project"
            `Quick test_summary_changing_edit_reanalyzes_project;
          Alcotest.test_case "include dependents re-run" `Quick
            test_include_dependents_rerun;
          Alcotest.test_case "add/remove" `Quick test_add_and_remove;
          Alcotest.test_case "unknown update raises" `Quick
            test_update_unknown_raises;
          Alcotest.test_case "event generations monotonic" `Quick
            test_event_generations_monotonic;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "export matches fresh scan, jobs 1/4" `Slow
            test_export_matches_fresh_scan;
          Alcotest.test_case "per-spec mode mutations" `Quick
            test_per_spec_mode_mutations;
          Alcotest.test_case "diagnostics partition the export" `Quick
            test_diagnostics_partition_export;
        ] );
    ]
