(** Tests for the taint analyzer: detection, sanitization, guards,
    interprocedural summaries, loops and de-duplication. *)

module VC = Wap_catalog.Vuln_class
module Cat = Wap_catalog.Catalog
module An = Wap_taint.Analyzer
module Tr = Wap_taint.Trace

let analyze ?(vclass = VC.Sqli) src : Tr.candidate list =
  let program = Wap_php.Parser.parse_string ~file:"t.php" ("<?php\n" ^ src) in
  An.analyze_program ~spec:(Cat.default_spec vclass) ~file:"t.php" program

let count ?vclass src = List.length (analyze ?vclass src)

let first ?vclass src =
  match analyze ?vclass src with
  | c :: _ -> c
  | [] -> Alcotest.fail "expected at least one candidate"

let primary ?vclass src = Tr.primary (first ?vclass src)

(* ------------------------------------------------------------------ *)
(* Basic detection.                                                    *)

let test_direct_flow () =
  Alcotest.(check int) "direct superglobal to sink" 1
    (count "mysql_query($_GET['q']);")

let test_variable_chain () =
  let c = first "$a = $_POST['x'];\n$b = $a;\n$c = $b;\nmysql_query($c);" in
  Alcotest.(check string) "source" "$_POST['x']" (Tr.primary c).Tr.source;
  Alcotest.(check int) "steps recorded" 3 (List.length (Tr.primary c).Tr.steps)

let test_interpolation_flow () =
  Alcotest.(check int) "interp taints query" 1
    (count "$u = $_GET['u'];\n$q = \"SELECT * FROM t WHERE u = '$u'\";\nmysql_query($q);")

let test_concat_flow () =
  Alcotest.(check int) "concat taints" 1
    (count "mysql_query('SELECT * FROM t WHERE id = ' . $_GET['id']);")

let test_compound_concat () =
  Alcotest.(check int) ".= accumulates taint" 1
    (count "$q = 'SELECT * FROM t WHERE c = ';\n$q .= $_GET['c'];\nmysql_query($q);")

let test_clean_code_silent () =
  Alcotest.(check int) "literals are clean" 0
    (count "$q = 'SELECT 1';\nmysql_query($q);\necho 'hello';");
  Alcotest.(check int) "local vars are clean" 0
    (count "$a = 5;\n$b = $a + 1;\nmysql_query('SELECT ' . $b);")

let test_per_class_sinks () =
  let cases =
    [ (VC.Xss_reflected, "echo $_GET['m'];");
      (VC.Xss_reflected, "print($_GET['m']);");
      (VC.Hi, "header('X: ' . $_COOKIE['h']);");
      (VC.Ei, "mail($_POST['to'], 's', 'b');");
      (VC.Osci, "system('ls ' . $_GET['d']);");
      (VC.Phpci, "eval($_REQUEST['code']);");
      (VC.Ldapi, "ldap_search($c, 'dc=x', \"(uid={$_GET['u']})\");");
      (VC.Xpathi, "xpath_eval($x, $_GET['p']);");
      (VC.Sf, "session_id($_GET['sid']);");
      (VC.Sf, "setcookie('s', $_COOKIE['t']);");
      (VC.Cs, "file_put_contents('c.txt', $_POST['comment']);");
      (VC.Rfi, "include($_GET['page']);");
      (VC.Lfi, "require('./p/' . $_GET['page']);");
      (VC.Dt_pt, "readfile('./d/' . $_GET['f']);");
      (VC.Scd, "show_source($_GET['f']);") ]
  in
  List.iter
    (fun (vclass, src) ->
      Alcotest.(check int) (VC.acronym vclass ^ ": " ^ src) 1 (count ~vclass src))
    cases

let test_method_sink () =
  Alcotest.(check int) "wpdb->query" 1
    (count ~vclass:VC.Wp_sqli
       "$id = $_GET['id'];\n$wpdb->query(\"DELETE FROM t WHERE id = $id\");");
  Alcotest.(check int) "collection->find" 1
    (count ~vclass:VC.Nosqli
       "$collection->find(array('u' => $_POST['u']));")

let test_exit_sink () =
  Alcotest.(check int) "exit() as XSS sink" 1
    (count ~vclass:VC.Xss_reflected "exit('bye ' . $_GET['n']);")

let test_backtick_sink () =
  (* the shell-execution operator is an OSCI sink *)
  Alcotest.(check int) "backtick" 1
    (count ~vclass:VC.Osci "$d = $_GET['dir'];\n$out = `ls -l $d`;");
  Alcotest.(check int) "clean backtick" 0 (count ~vclass:VC.Osci "$out = `uptime`;")

let test_sprintf_flow () =
  (* sprintf propagates taint and records the query structure *)
  let c =
    first
      "$id = $_GET['id'];\n$q = sprintf('SELECT name FROM users WHERE id = %d', $id);\nmysql_query($q);"
  in
  let o = Tr.primary c in
  Alcotest.(check bool) "through sprintf" true (List.mem "sprintf" o.Tr.through);
  let lits =
    List.filter_map (function Tr.Qlit s -> Some s | Tr.Qdyn -> None) o.Tr.parts
  in
  Alcotest.(check bool) "format captured" true
    (List.exists (fun s -> s = "SELECT name FROM users WHERE id = ") lits);
  (* ... so the SQL symptoms see FROM and the numeric position *)
  let ev = Wap_mining.Evidence.collect c in
  Alcotest.(check bool) "from" true (Wap_mining.Evidence.mem "from" ev);
  Alcotest.(check bool) "is_num" true (Wap_mining.Evidence.mem "is_num" ev)

let test_sprintf_clean () =
  Alcotest.(check int) "sprintf of literals is clean" 0
    (count "$q = sprintf('SELECT %d', 7);\nmysql_query($q);")

(* ------------------------------------------------------------------ *)
(* Sanitization.                                                       *)

let test_sanitizer_kills () =
  Alcotest.(check int) "sqli sanitizer" 0
    (count "$u = mysql_real_escape_string($_GET['u']);\nmysql_query(\"SELECT * FROM t WHERE u = '$u'\");");
  Alcotest.(check int) "xss sanitizer" 0
    (count ~vclass:VC.Xss_reflected "echo htmlspecialchars($_GET['m']);");
  Alcotest.(check int) "path sanitizer" 0
    (count ~vclass:VC.Dt_pt "readfile('./d/' . basename($_GET['f']));")

let test_sanitizer_is_class_specific () =
  (* htmlspecialchars does not protect against SQLI *)
  Alcotest.(check int) "xss sanitizer does not stop sqli" 1
    (count "$u = htmlspecialchars($_GET['u']);\nmysql_query(\"SELECT * FROM t WHERE u = '$u'\");")

let test_sanitizer_method () =
  Alcotest.(check int) "wpdb->prepare" 0
    (count ~vclass:VC.Wp_sqli
       "$wpdb->query($wpdb->prepare('SELECT * FROM t WHERE id = %d', $_GET['id']));")

let test_extra_sanitizer_via_spec () =
  let src =
    "$u = escape($_GET['u']);\nmysql_query(\"SELECT * FROM t WHERE u = '$u'\");"
  in
  Alcotest.(check int) "unknown user function keeps taint" 1 (count src);
  let spec = Cat.default_spec VC.Sqli in
  let spec = { spec with Cat.sanitizers = Cat.San_fn "escape" :: spec.Cat.sanitizers } in
  let program = Wap_php.Parser.parse_string ~file:"t.php" ("<?php\n" ^ src) in
  Alcotest.(check int) "registered user sanitizer kills" 0
    (List.length (An.analyze_program ~spec ~file:"t.php" program))

(* ------------------------------------------------------------------ *)
(* Guards and evidence.                                                *)

let test_guard_recorded () =
  let o =
    primary
      "$id = $_GET['id'];\nif (is_numeric($id)) {\n  mysql_query('SELECT * FROM t WHERE id = ' . $id);\n}"
  in
  Alcotest.(check bool) "is_numeric guard" true (List.mem "is_numeric" o.Tr.guards)

let test_guard_die_pattern () =
  let o =
    primary
      "$n = $_GET['n'];\nif (!preg_match('/^[a-z]+$/', $n)) { die('x'); }\nmysql_query(\"SELECT * FROM t WHERE n = '$n'\");"
  in
  Alcotest.(check bool) "preg_match guard" true (List.mem "preg_match" o.Tr.guards);
  Alcotest.(check bool) "exit evidence" true (List.mem "exit" o.Tr.guards)

let test_guard_not_applied_in_other_branch () =
  (* the candidate inside the else branch is NOT guarded by is_int *)
  let o =
    primary
      "$v = $_GET['v'];\nif (is_int($v)) {\n  $x = 1;\n} else {\n  mysql_query(\"SELECT * FROM t WHERE v = '$v'\");\n}"
  in
  Alcotest.(check bool) "no is_int guard in else" false (List.mem "is_int" o.Tr.guards)

let test_guard_isset_negative_branch () =
  (* `if (empty($v)) {} else { sink }` : else means non-empty *)
  let o =
    primary
      "$v = $_GET['v'];\nif (empty($v)) {\n  $x = 1;\n} else {\n  mysql_query(\"SELECT * FROM t WHERE v = '$v'\");\n}"
  in
  Alcotest.(check bool) "empty guard in else" true (List.mem "empty" o.Tr.guards)

let test_guard_conjunction () =
  let o =
    primary
      "$v = $_GET['v'];\nif (isset($v) && ctype_alnum($v)) {\n  mysql_query(\"SELECT * FROM t WHERE v = '$v'\");\n}"
  in
  Alcotest.(check bool) "isset" true (List.mem "isset" o.Tr.guards);
  Alcotest.(check bool) "ctype_alnum" true (List.mem "ctype_alnum" o.Tr.guards)

let test_guard_comparison () =
  let o =
    primary
      "$v = $_GET['v'];\nif (strcmp($v, 'ok') == 0) {\n  mysql_query(\"SELECT * FROM t WHERE v = '$v'\");\n}"
  in
  Alcotest.(check bool) "strcmp" true (List.mem "strcmp" o.Tr.guards)

let test_through_records_manipulations () =
  let o =
    primary
      "$v = trim($_GET['v']);\n$v = substr($v, 0, 9);\nmysql_query('SELECT * FROM t WHERE v = ' . $v);"
  in
  Alcotest.(check bool) "trim" true (List.mem "trim" o.Tr.through);
  Alcotest.(check bool) "substr" true (List.mem "substr" o.Tr.through);
  Alcotest.(check bool) "concat" true (List.mem "concat_op" o.Tr.through)

let test_cast_evidence () =
  let o =
    primary "$v = (int) $_GET['v'];\nmysql_query('SELECT * FROM t WHERE v = ' . $v);"
  in
  Alcotest.(check bool) "(int) recorded" true (List.mem "(int)" o.Tr.through)

let test_query_parts_recorded () =
  let o =
    primary
      "$v = $_GET['v'];\n$q = \"SELECT name FROM users WHERE id = \" . $v;\nmysql_query($q);"
  in
  let lits =
    List.filter_map (function Tr.Qlit s -> Some s | Tr.Qdyn -> None) o.Tr.parts
  in
  Alcotest.(check bool) "query text captured" true
    (List.exists (fun s -> s = "SELECT name FROM users WHERE id = ") lits)

(* ------------------------------------------------------------------ *)
(* Interprocedural analysis.                                           *)

let test_param_to_sink () =
  let cands =
    analyze ~vclass:VC.Hi
      "function redirect($to) {\n  header('Location: ' . $to);\n}\nredirect($_GET['next']);"
  in
  Alcotest.(check int) "sink inside callee" 1 (List.length cands);
  let c = List.hd cands in
  (* line 1 is the <?php marker, line 2 the function header, line 3 the sink *)
  Alcotest.(check int) "sink line inside function" 3 c.Tr.sink_loc.Wap_php.Loc.line

let test_param_to_return () =
  let o =
    primary ~vclass:VC.Xss_reflected
      "function deco($x) { return '[' . trim($x) . ']'; }\necho deco($_GET['m']);"
  in
  Alcotest.(check bool) "through callee" true (List.mem "deco" o.Tr.through);
  Alcotest.(check bool) "through trim inside callee" true (List.mem "trim" o.Tr.through)

let test_sanitizing_wrapper () =
  Alcotest.(check int) "wrapper around sanitizer is a sanitizer" 0
    (count
       "function clean($x) { return mysql_real_escape_string($x); }\n\
        $u = clean($_GET['u']);\nmysql_query(\"SELECT * FROM t WHERE u = '$u'\");")

let test_source_function () =
  Alcotest.(check int) "function returning superglobal is a source" 1
    (count
       "function param($k) { return $_GET[$k]; }\n\
        mysql_query('SELECT * FROM t WHERE c = ' . param('c'));")

let test_two_level_call_chain () =
  Alcotest.(check int) "summary through two levels" 1
    (count
       "function inner($x) { return $x; }\n\
        function outer($y) { return inner($y); }\n\
        mysql_query('SELECT * FROM t WHERE c = ' . outer($_GET['c']));")

let test_superglobal_inside_function () =
  let cands =
    analyze "function run() {\n  mysql_query('SELECT * FROM t WHERE c = ' . $_GET['c']);\n}"
  in
  Alcotest.(check int) "flow local to a function body" 1 (List.length cands)

let test_method_summary () =
  Alcotest.(check int) "method body analyzed" 1
    (count ~vclass:VC.Xss_reflected
       "class V { public function show() { echo $_GET['m']; } }")

let test_closure_body () =
  Alcotest.(check int) "flow inside closure" 1
    (count ~vclass:VC.Xss_reflected
       "$f = function () { echo $_GET['m']; };")

(* ------------------------------------------------------------------ *)
(* Control flow.                                                       *)

let test_loop_taint () =
  Alcotest.(check int) "taint built inside loop" 1
    (count
       "$q = 'SELECT * FROM t WHERE c IN (';\n\
        foreach ($_POST['ids'] as $id) {\n  $q = $q . $id . ',';\n}\n\
        mysql_query($q . '0)');")

let test_foreach_binding () =
  Alcotest.(check int) "foreach over tainted subject" 1
    (count ~vclass:VC.Xss_reflected
       "foreach ($_GET as $k => $v) {\n  echo $v;\n}")

let test_unset_clears () =
  Alcotest.(check int) "unset kills taint" 0
    (count "$v = $_GET['v'];\nunset($v);\n$v = 'safe';\nmysql_query('SELECT ' . $v);")

let test_branch_merge () =
  (* taint from either branch survives the merge *)
  Alcotest.(check int) "tainted in one branch" 1
    (count
       "if ($_GET['mode'] == 'a') {\n  $v = $_GET['a'];\n} else {\n  $v = 'default';\n}\n\
        mysql_query(\"SELECT * FROM t WHERE v = '$v'\");")

let test_switch_flow () =
  Alcotest.(check int) "taint through switch case" 1
    (count
       "switch ($_GET['m']) {\n\
        case 'x': $v = $_GET['x']; break;\n\
        default: $v = '0';\n}\n\
        mysql_query('SELECT * FROM t WHERE v = ' . $v);")

let test_stored_xss_source () =
  Alcotest.(check int) "fetch result is a stored-XSS source" 1
    (count ~vclass:VC.Xss_stored
       "$r = mysql_query('SELECT body FROM c');\n\
        while ($row = mysql_fetch_assoc($r)) {\n  echo $row['body'];\n}");
  (* but not a reflected-XSS source *)
  Alcotest.(check int) "not a reflected-XSS source" 0
    (count ~vclass:VC.Xss_reflected
       "$r = mysql_query('SELECT body FROM c');\n\
        while ($row = mysql_fetch_assoc($r)) {\n  echo $row['body'];\n}")

let test_preg_replace_eval_modifier () =
  (* only the /e modifier makes preg_replace a PHPCI sink *)
  Alcotest.(check int) "with /e" 1
    (count ~vclass:VC.Phpci "preg_replace('/x/e', $_GET['r'], 'subject');");
  Alcotest.(check int) "without /e" 0
    (count ~vclass:VC.Phpci "preg_replace('/x/', $_GET['r'], 'subject');")

(* ------------------------------------------------------------------ *)
(* Cross-file include splicing.                                        *)

let project files =
  List.map
    (fun (path, src) ->
      { An.path; program = Wap_php.Parser.parse_string ~file:path src })
    files

let test_include_splicing () =
  let units =
    project
      [ ("config.php", "<?php\n$prefix = $_GET['p'];\n");
        ("index.php",
         "<?php\ninclude 'config.php';\nmysql_query('SELECT * FROM t WHERE c = ' . $prefix);\n") ]
  in
  let cands = An.analyze_project ~spec:(Cat.default_spec VC.Sqli) units in
  Alcotest.(check int) "cross-file flow found" 1 (List.length cands);
  let c = List.hd cands in
  Alcotest.(check string) "sink attributed to the includer" "index.php" c.Tr.file

let test_include_cycle_terminates () =
  let units =
    project
      [ ("a.php", "<?php\ninclude 'b.php';\n$x = $_GET['x'];\n");
        ("b.php", "<?php\ninclude 'a.php';\nmysql_query('SELECT ' . $x);\n") ]
  in
  (* must terminate; the mutual include is cut by the cycle guard *)
  let _ = An.analyze_project ~spec:(Cat.default_spec VC.Sqli) units in
  ()

let test_include_literal_concat () =
  let units =
    project
      [ ("inc.php", "<?php\n$v = $_POST['v'];\n");
        ("main.php", "<?php\ninclude './lib/' . 'inc.php';\necho $v;\n") ]
  in
  let cands =
    An.analyze_project ~spec:(Cat.default_spec VC.Xss_reflected) units
  in
  Alcotest.(check int) "concatenated literal path resolved" 1 (List.length cands)

let test_query_handle_barrier () =
  (* a tainted query string must not taint the result handle: rendering
     query results is not reflected XSS *)
  Alcotest.(check int) "result handle is clean" 0
    (count ~vclass:VC.Xss_reflected
       "$q = 'SELECT * FROM t WHERE c = ' . $_GET['c'];\n\
        $res = mysql_query($q);\n\
        $row = mysql_fetch_assoc($res);\n\
        echo $row['name'];")

let test_shared_helper_distinct_flows () =
  (* two call sites of one query helper are two findings *)
  let cands =
    analyze
      "function q($sql) { return mysql_query($sql); }\n\
       q('SELECT a FROM t WHERE x = ' . $_GET['x']);\n\
       q('SELECT b FROM u WHERE y = ' . $_POST['y']);"
  in
  Alcotest.(check int) "both flows kept" 2
    (List.length
       (List.sort_uniq compare (List.map Tr.dedup_key cands)))

let test_fix_function_recognized () =
  (* code already corrected by the tool is not re-flagged *)
  Alcotest.(check int) "san_sqli recognized" 0
    (count
       "function san_sqli($v) { return mysql_real_escape_string($v); }\n\
        $u = $_GET['u'];\nmysql_query(san_sqli(\"SELECT * FROM t WHERE u = '$u'\"));");
  Alcotest.(check int) "san_hei recognized" 0
    (count ~vclass:VC.Hi
       "function san_hei($v) { return str_replace(array(\"\\r\", \"\\n\"), ' ', $v); }\n\
        header(san_hei('Location: ' . $_GET['n']));")

(* ------------------------------------------------------------------ *)
(* Dead code: a sink control flow never reaches is not a candidate.    *)

let test_sink_after_exit_pruned () =
  Alcotest.(check int) "sink after unconditional exit" 0
    (count "exit;\nmysql_query($_GET['q']);")

let test_sink_after_return_in_function_pruned () =
  Alcotest.(check int) "sink after return inside function" 0
    (count "function f() {\n  return 1;\n  mysql_query($_GET['q']);\n}\nf();")

let test_sink_after_conditional_die_kept () =
  (* the guarded-die pattern leaves the sink reachable *)
  Alcotest.(check int) "sink after guarded die" 1
    (count "if (!$_GET['q']) { die(1); }\nmysql_query($_GET['q']);")

let test_sink_in_hoisted_function_kept () =
  (* declarations are hoisted: defining the function after exit does not
     make its body dead *)
  Alcotest.(check int) "sink in function declared after exit" 1
    (count "f($_GET['q']);\nexit;\nfunction f($x) {\n  mysql_query($x);\n}")

(* ------------------------------------------------------------------ *)
(* De-duplication and determinism.                                     *)

let test_candidate_dedup_same_sink () =
  (* one loop analyzed several times must yield one candidate *)
  let cands =
    analyze
      "for ($i = 0; $i < 3; $i++) {\n  mysql_query('SELECT * FROM t WHERE c = ' . $_GET['c']);\n}"
  in
  Alcotest.(check int) "single candidate" 1 (List.length cands)

let test_dedup_key_groups () =
  let rfi = first ~vclass:VC.Rfi "include($_GET['p']);" in
  let lfi = first ~vclass:VC.Lfi "include($_GET['p']);" in
  Alcotest.(check bool) "same dedup key across Files classes" true
    (Tr.dedup_key rfi = Tr.dedup_key lfi)

let test_determinism () =
  let src =
    "$a = $_GET['a'];\nif (!is_numeric($a)) { die(1); }\n\
     mysql_query('SELECT * FROM t WHERE a = ' . $a);\necho $_GET['b'];"
  in
  let run () =
    List.map Tr.summary (analyze src)
  in
  Alcotest.(check (list string)) "same results twice" (run ()) (run ())

let qcheck_sanitizer_monotone =
  (* registering an extra sanitizer never increases the candidate count *)
  QCheck.Test.make ~name:"extra sanitizer is monotone" ~count:50
    QCheck.(int_bound 5_000)
    (fun seed ->
      let g = Wap_corpus.Snippet.make_gen ~seed in
      let snip = Wap_corpus.Snippet.generate g VC.Sqli Wap_corpus.Snippet.Real in
      let src = "<?php\n" ^ snip.Wap_corpus.Snippet.code in
      let program = Wap_php.Parser.parse_string ~file:"q.php" src in
      let spec = Cat.default_spec VC.Sqli in
      let more =
        { spec with Cat.sanitizers = Cat.San_fn "trim" :: spec.Cat.sanitizers }
      in
      let n1 = List.length (An.analyze_program ~spec ~file:"q.php" program) in
      let n2 = List.length (An.analyze_program ~spec:more ~file:"q.php" program) in
      n2 <= n1)

let qcheck_seeded_real_detected =
  (* every generated Real snippet is detected by its class's detector *)
  QCheck.Test.make ~name:"generated real vulns are detected" ~count:80
    QCheck.(int_bound 10_000)
    (fun seed ->
      let classes = VC.wape in
      let vclass = List.nth classes (seed mod List.length classes) in
      let g = Wap_corpus.Snippet.make_gen ~seed in
      let snip = Wap_corpus.Snippet.generate g vclass Wap_corpus.Snippet.Real in
      let src = "<?php\n" ^ snip.Wap_corpus.Snippet.code in
      let program = Wap_php.Parser.parse_string ~file:"q.php" src in
      let spec = Cat.default_spec vclass in
      An.analyze_program ~spec ~file:"q.php" program <> [])

let qcheck_sanitized_silent =
  QCheck.Test.make ~name:"generated sanitized flows are silent" ~count:80
    QCheck.(int_bound 10_000)
    (fun seed ->
      let classes =
        (* classes whose sanitized snippets use a genuine class sanitizer *)
        VC.[ Sqli; Xss_reflected; Rfi; Lfi; Dt_pt; Scd; Osci; Ldapi; Nosqli; Cs; Wp_sqli ]
      in
      let vclass = List.nth classes (seed mod List.length classes) in
      let g = Wap_corpus.Snippet.make_gen ~seed in
      let snip = Wap_corpus.Snippet.generate g vclass Wap_corpus.Snippet.Sanitized in
      let src = "<?php\n" ^ snip.Wap_corpus.Snippet.code in
      let program = Wap_php.Parser.parse_string ~file:"q.php" src in
      let spec = Cat.default_spec vclass in
      An.analyze_program ~spec ~file:"q.php" program = [])

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "wap_taint"
    [
      ( "dead code",
        [
          Alcotest.test_case "after exit" `Quick test_sink_after_exit_pruned;
          Alcotest.test_case "after return in function" `Quick
            test_sink_after_return_in_function_pruned;
          Alcotest.test_case "guarded die kept" `Quick
            test_sink_after_conditional_die_kept;
          Alcotest.test_case "hoisted function kept" `Quick
            test_sink_in_hoisted_function_kept;
        ] );
      ( "detection",
        [
          Alcotest.test_case "direct flow" `Quick test_direct_flow;
          Alcotest.test_case "variable chain" `Quick test_variable_chain;
          Alcotest.test_case "interpolation" `Quick test_interpolation_flow;
          Alcotest.test_case "concatenation" `Quick test_concat_flow;
          Alcotest.test_case ".= accumulation" `Quick test_compound_concat;
          Alcotest.test_case "clean code silent" `Quick test_clean_code_silent;
          Alcotest.test_case "all class sinks" `Quick test_per_class_sinks;
          Alcotest.test_case "method sinks" `Quick test_method_sink;
          Alcotest.test_case "exit sink" `Quick test_exit_sink;
          Alcotest.test_case "backtick sink" `Quick test_backtick_sink;
          Alcotest.test_case "sprintf flow" `Quick test_sprintf_flow;
          Alcotest.test_case "sprintf clean" `Quick test_sprintf_clean;
        ] );
      ( "sanitization",
        [
          Alcotest.test_case "sanitizer kills flow" `Quick test_sanitizer_kills;
          Alcotest.test_case "sanitizers are class-specific" `Quick
            test_sanitizer_is_class_specific;
          Alcotest.test_case "method sanitizer" `Quick test_sanitizer_method;
          Alcotest.test_case "user sanitizer via spec (V-A)" `Quick
            test_extra_sanitizer_via_spec;
        ] );
      ( "guards",
        [
          Alcotest.test_case "guard recorded" `Quick test_guard_recorded;
          Alcotest.test_case "die pattern" `Quick test_guard_die_pattern;
          Alcotest.test_case "polarity: else unguarded" `Quick
            test_guard_not_applied_in_other_branch;
          Alcotest.test_case "polarity: empty in else" `Quick
            test_guard_isset_negative_branch;
          Alcotest.test_case "conjunction" `Quick test_guard_conjunction;
          Alcotest.test_case "comparison guard" `Quick test_guard_comparison;
          Alcotest.test_case "manipulations recorded" `Quick
            test_through_records_manipulations;
          Alcotest.test_case "casts recorded" `Quick test_cast_evidence;
          Alcotest.test_case "query parts recorded" `Quick test_query_parts_recorded;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "param to sink" `Quick test_param_to_sink;
          Alcotest.test_case "param to return" `Quick test_param_to_return;
          Alcotest.test_case "sanitizing wrapper" `Quick test_sanitizing_wrapper;
          Alcotest.test_case "source function" `Quick test_source_function;
          Alcotest.test_case "two-level chain" `Quick test_two_level_call_chain;
          Alcotest.test_case "superglobal inside function" `Quick
            test_superglobal_inside_function;
          Alcotest.test_case "method bodies" `Quick test_method_summary;
          Alcotest.test_case "closure bodies" `Quick test_closure_body;
        ] );
      ( "control flow",
        [
          Alcotest.test_case "loop fixpoint" `Quick test_loop_taint;
          Alcotest.test_case "foreach binding" `Quick test_foreach_binding;
          Alcotest.test_case "unset clears" `Quick test_unset_clears;
          Alcotest.test_case "branch merge" `Quick test_branch_merge;
          Alcotest.test_case "switch" `Quick test_switch_flow;
          Alcotest.test_case "stored XSS source" `Quick test_stored_xss_source;
          Alcotest.test_case "preg_replace /e" `Quick test_preg_replace_eval_modifier;
        ] );
      ( "cross-file & barriers",
        [
          Alcotest.test_case "include splicing" `Quick test_include_splicing;
          Alcotest.test_case "include cycle terminates" `Quick
            test_include_cycle_terminates;
          Alcotest.test_case "literal concat path" `Quick test_include_literal_concat;
          Alcotest.test_case "query handle barrier" `Quick test_query_handle_barrier;
          Alcotest.test_case "shared helper distinct flows" `Quick
            test_shared_helper_distinct_flows;
          Alcotest.test_case "fix functions recognized" `Quick
            test_fix_function_recognized;
        ] );
      ( "dedup & determinism",
        [
          Alcotest.test_case "loop dedup" `Quick test_candidate_dedup_same_sink;
          Alcotest.test_case "dedup key groups" `Quick test_dedup_key_groups;
          Alcotest.test_case "deterministic" `Quick test_determinism;
        ] );
      ( "properties",
        [ qt qcheck_sanitizer_monotone; qt qcheck_seeded_real_detected;
          qt qcheck_sanitized_silent ] );
    ]
